#pragma once
// Algorithm 1: signature-based data-dependence detection.
//
// One detector owns a read signature and a write signature and turns an
// ordered stream of accesses to *its* addresses into merged dependences.
// The serial profiler has one detector; the parallel pipeline has one per
// worker (Fig. 2), which is sound because every address is owned by exactly
// one worker and workers see their addresses in program order.
//
// Note on the published pseudocode: the INIT branch and the WAR branch are
// independent.  Fig. 1 line "1:65 NOM ... {WAR 1:67|temp2} {INIT *}" shows a
// sink that is simultaneously an initialization (first write) and the sink
// of a WAR against an earlier read, so a write checks the read signature
// regardless of whether the write signature already held the address.
//
// DetectorCore is the single Algorithm 1 implementation, templated over any
// type satisfying the AccessStore concept: the fixed-size Signature, the
// PerfectSignature baseline, the ShadowMemory baseline, and the
// HashTableRecorder baseline.  The slot layout is deduced from the store
// (Store::slot_type), so each (backend, target kind) pair is one full
// monomorphization — there is no per-access branch on the storage kind
// anywhere in the detect loop.

#include <algorithm>
#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/hash.hpp"
#include "core/dep.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"
#include "trace/event.hpp"
#include "trace/nest.hpp"

namespace depprof {

static_assert(kNestLevels == kNestIters,
              "DepInfo level buckets mirror the event iteration window");

/// Builds the slot recorded for an access.
template <typename Slot>
Slot make_slot(const AccessEvent& ev) {
  Slot s;
  s.loc = ev.loc;
  s.tag = addr_tag(ev.addr);
  s.ctx = ev.ctx;
  for (std::size_t i = 0; i < kNestIters; ++i) s.iters[i] = ev.iters[i];
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    s.tid = ev.tid;
    s.flags = ev.flags;
    s.ts = ev.ts;
  }
  return s;
}

/// Resolves two nest contexts to the innermost dynamic loop entry common to
/// both (the lowest common ancestor in the forest) and the carried distance
/// at that level.  Returns a zero attribution when the endpoints share no
/// loop entry.
///
/// The LCA loop is the *only* candidate carrier: both contexts descend from
/// the same dynamic entry at every level above it, and a thread reaches two
/// different child entries (or two iterations of the same entry) only after
/// advancing some iteration counter at or above the divergence point —
/// every strictly higher level's counter is therefore equal for both
/// endpoints, and the distance vector of the pair is zero everywhere except
/// possibly at the LCA level itself.  That level's counters sit inside both
/// events' root-anchored windows whenever its depth is <= kNestIters;
/// deeper common levels degrade to "carried, distance unknown" (the >= 2
/// bucket) rather than to any heuristic.
inline DepAttribution attribute_nest(std::uint32_t src_ctx,
                                     const std::uint32_t* src_iters,
                                     std::uint32_t sink_ctx,
                                     const std::uint32_t* sink_iters) {
  DepAttribution at;
  if (src_ctx == NestForest::kRoot || sink_ctx == NestForest::kRoot) return at;
  const NestForest& forest = nest_forest();
  std::uint32_t a = src_ctx;
  std::uint32_t b = sink_ctx;
  std::uint32_t da = forest.depth(a);
  std::uint32_t db = forest.depth(b);
  while (da > db) {
    a = forest.parent(a);
    --da;
  }
  while (db > da) {
    b = forest.parent(b);
    --db;
  }
  while (a != b) {
    a = forest.parent(a);
    b = forest.parent(b);
    --da;
  }
  if (a == NestForest::kRoot) return at;
  at.loop = forest.loop(a);
  at.level = da;
  if (da <= kNestIters) {
    const std::uint32_t ia = src_iters[da - 1];
    const std::uint32_t ib = sink_iters[da - 1];
    at.distance = ib > ia ? ib - ia : ia - ib;
    at.distance_known = true;
  } else {
    at.distance = 0;
    at.distance_known = false;
  }
  return at;
}

/// Flags qualifying the dependence built from recorded source `src` and
/// current sink `sink`, plus its nest attribution.
///
/// When the slot's address tag does not match the sink's address, the slot
/// was written by a *colliding* address: the dependence record itself is
/// still built (the paper's approximate-membership semantics), but the
/// nest-context and timestamp comparisons would compare two unrelated
/// accesses, so no qualifying flags or attribution are derived (see
/// slots.hpp).
template <typename Slot>
std::uint8_t classify_dep(const Slot& src, const AccessEvent& sink,
                          DepAttribution& at) {
  std::uint8_t f = 0;
  at = {};
  const bool same_address = src.tag == addr_tag(sink.addr);
  if (same_address) {
    at = attribute_nest(src.ctx, src.iters, sink.ctx, sink.iters);
    if (at.loop != 0 && (!at.distance_known || at.distance != 0))
      f |= kLoopCarried;
    if (src.ctx != sink.ctx &&
        (src.ctx != NestForest::kRoot || sink.ctx != NestForest::kRoot))
      f |= kCrossLoop;
  }
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    if (src.tid != sink.tid) f |= kCrossThread;
    if (same_address) {
      // A worker expects increasing timestamps per address (Sec. V-B); a
      // reversal proves the access/push pair was not mutually excluded with
      // the recorded one — a potential data race.
      if (src.ts > sink.ts) f |= kReversed;
      // Both endpoints inside lock regions: the target's own mutual
      // exclusion ordered this pair, so it cannot be a race candidate.
      // Gated on the address tag like the timestamp check — a colliding
      // slot must not suppress an unrelated pair.
      if ((src.flags & kInLockRegion) != 0 &&
          (sink.flags & kInLockRegion) != 0)
        f |= kLockProtected;
    }
  }
  return f;
}

template <AccessStore Store>
class DetectorCore {
 public:
  using Slot = typename Store::slot_type;

  /// Takes ownership of the two (empty) signatures.
  DetectorCore(Store sig_read, Store sig_write)
      : sig_read_(std::move(sig_read)), sig_write_(std::move(sig_write)) {}

  /// Processes one access in program order (Algorithm 1).
  void process(const AccessEvent& ev, DepMap& deps) {
    process_one(ev, [&](const DepKey& k, std::uint8_t flags,
                        const DepAttribution& at) { deps.add(k, flags, at); });
  }

  /// Distance (in events) between a prefetch and its consuming compare.
  /// Far enough to cover an LLC miss at ~4 events' work per miss, small
  /// enough that the prefetched lines are still resident when reached.
  static constexpr std::size_t kPrefetchDistance = 8;

  /// Batched Algorithm 1: identical results to calling process() per event,
  /// with the two batch-only optimizations of the hot path:
  ///
  ///  - the read/write store slots of the event kPrefetchDistance ahead are
  ///    software-prefetched (write intent) before each compare/update,
  ///    overlapping the slot misses of the per-event kernel;
  ///  - dependence records — which repeat the same few (sink, source, var)
  ///    keys throughout a batch — are aggregated in a small stack table and
  ///    folded into the map once per distinct key (DepMap::fold) instead of
  ///    one map probe per event.
  ///
  /// Returns the number of prefetch pairs issued (obs accounting).
  std::size_t process_batch(const AccessEvent* events, std::size_t count,
                            DepMap& deps) {
    DepBatch batch;
    std::size_t prefetched = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t ahead = i + kPrefetchDistance;
      if (ahead < count) {
        sig_read_.prefetch(events[ahead].addr);
        sig_write_.prefetch(events[ahead].addr);
        ++prefetched;
      }
      process_one(events[i], [&](const DepKey& k, std::uint8_t flags,
                                 const DepAttribution& at) {
        if (!batch.accumulate(k, flags, at)) deps.add(k, flags, at);
      });
    }
    batch.flush(deps);
    return prefetched;
  }

  Store& read_signature() { return sig_read_; }
  Store& write_signature() { return sig_write_; }

  /// Migration support (Sec. IV-A): extract/adopt the per-address state.
  struct AddrState {
    bool has_read = false;
    bool has_write = false;
    Slot read_slot{};
    Slot write_slot{};
  };

  AddrState extract_state(std::uint64_t addr) {
    AddrState st;
    if (auto r = sig_read_.extract(addr)) {
      st.has_read = true;
      st.read_slot = *r;
    }
    if (auto w = sig_write_.extract(addr)) {
      st.has_write = true;
      st.write_slot = *w;
    }
    return st;
  }

  void adopt_state(std::uint64_t addr, const AddrState& st) {
    if (st.has_read) sig_read_.insert(addr, st.read_slot);
    if (st.has_write) sig_write_.insert(addr, st.write_slot);
  }

 private:
  /// Algorithm 1 for one access.  Every dependence record (including INIT)
  /// goes through `sink(key, flags, attribution)` instead of touching the
  /// map directly, so the batch kernel can aggregate records per batch while
  /// the per-event kernel adds them straight to the map.
  template <typename Sink>
  void process_one(const AccessEvent& ev, Sink&& sink) {
    if (ev.is_burst_mark()) {
      // Overhead-budget sampling: accesses were dropped before this point.
      // Forget every recorded last access so no dependence is attributed
      // across the unobserved gap — a stale source could name the wrong
      // endpoint, and the subset contract tolerates missed edges only.
      sig_read_.clear();
      sig_write_.clear();
      return;
    }
    if (ev.is_free()) {
      // Variable-lifetime analysis: obsolete addresses leave the signatures
      // so later re-use of the memory does not fabricate dependences.
      sig_read_.remove(ev.addr);
      sig_write_.remove(ev.addr);
      return;
    }
    if (ev.is_write()) {
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kWaw, sink);
      } else {
        sink(init_key(ev), 0, DepAttribution{});
      }
      if (const Slot* r = sig_read_.find(ev.addr)) {
        emit(ev, *r, DepType::kWar, sink);
      }
      sig_write_.insert(ev.addr, make_slot<Slot>(ev));
    } else {
      // RAR dependences are ignored (Sec. III-B): most analyses do not need
      // them, so reads only consult the write signature.
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kRaw, sink);
      }
      sig_read_.insert(ev.addr, make_slot<Slot>(ev));
    }
  }

  /// Per-batch record accumulator: a small linear-probe table keyed by
  /// DepKey, applying DepMap::add's per-instance update rules locally.
  /// Flushing folds each entry into the map with DepMap::fold, whose result
  /// is exactly that of replaying the instances one add() at a time (every
  /// per-key update is a commutative join: flags OR, count sum, per-level
  /// loop max and bucket sums).  Occupancy sentinel is count == 0.  Probes are capped; a record
  /// that finds neither its key nor a free slot within the cap goes straight
  /// to the map, which keeps the table loss-free and bounded.
  struct DepBatch {
    // Power of two (the probe sequence masks); sized for the instantaneous
    // key set of a hot loop (tens of keys), not the whole program's map.
    static constexpr std::size_t kSlots = 128;
    static constexpr std::size_t kMaxProbe = 8;
    static_assert((kSlots & (kSlots - 1)) == 0);
    struct Entry {
      DepKey key;
      DepInfo info;  ///< info.count == 0 = slot free
    };
    std::array<Entry, kSlots> entries{};

    /// Applies one instance; false if the record must go to the map.
    bool accumulate(const DepKey& key, std::uint8_t flags,
                    const DepAttribution& at) {
      // A throwaway 128-slot table does not need DepKeyHash's full-strength
      // mixing — one multiply per field keeps the accumulate cheaper than
      // the map probe it replaces; collisions just fall through to the map.
      std::size_t i =
          (key.sink_loc * 0x9E3779B9u + key.src_loc * 0x85EBCA6Bu +
           key.var * 0xC2B2AE35u + key.sink_tid + key.src_tid +
           static_cast<std::size_t>(key.type)) &
          (kSlots - 1);
      for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
        Entry& e = entries[i];
        if (e.info.count != 0 && !(e.key == key)) {
          i = (i + 1) & (kSlots - 1);
          continue;
        }
        if (e.info.count == 0) e.key = key;
        // The exact same per-instance update DepMap::add applies.
        apply_dep_instance(e.info, flags, at);
        return true;
      }
      return false;
    }

    void flush(DepMap& deps) {
      for (const Entry& e : entries)
        if (e.info.count != 0) deps.fold(e.key, e.info);
    }
  };

  template <typename Sink>
  void emit(const AccessEvent& sink_ev, const Slot& src, DepType type,
            Sink&& sink) {
    DepAttribution at;
    const std::uint8_t flags = classify_dep(src, sink_ev, at);
    DepKey k;
    k.sink_loc = sink_ev.loc;
    k.src_loc = src.loc;
    k.var = sink_ev.var;
    k.sink_tid = sink_ev.tid;
    if constexpr (std::is_same_v<Slot, MtSlot>)
      k.src_tid = static_cast<std::uint16_t>(src.tid);
    k.type = type;
    sink(k, flags, at);
  }

  static DepKey init_key(const AccessEvent& sink) {
    DepKey k;
    k.sink_loc = sink.loc;
    k.src_loc = 0;
    k.var = sink.var;
    k.sink_tid = sink.tid;
    k.type = DepType::kInit;
    return k;
  }

  Store sig_read_;
  Store sig_write_;
};

}  // namespace depprof
