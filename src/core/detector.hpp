#pragma once
// Algorithm 1: signature-based data-dependence detection.
//
// One detector owns a read signature and a write signature and turns an
// ordered stream of accesses to *its* addresses into merged dependences.
// The serial profiler has one detector; the parallel pipeline has one per
// worker (Fig. 2), which is sound because every address is owned by exactly
// one worker and workers see their addresses in program order.
//
// Note on the published pseudocode: the INIT branch and the WAR branch are
// independent.  Fig. 1 line "1:65 NOM ... {WAR 1:67|temp2} {INIT *}" shows a
// sink that is simultaneously an initialization (first write) and the sink
// of a WAR against an earlier read, so a write checks the read signature
// regardless of whether the write signature already held the address.
//
// DetectorCore is the single Algorithm 1 implementation, templated over any
// type satisfying the AccessStore concept: the fixed-size Signature, the
// PerfectSignature baseline, the ShadowMemory baseline, and the
// HashTableRecorder baseline.  The slot layout is deduced from the store
// (Store::slot_type), so each (backend, target kind) pair is one full
// monomorphization — there is no per-access branch on the storage kind
// anywhere in the detect loop.

#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/dep.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"
#include "trace/event.hpp"

namespace depprof {

/// Builds the slot recorded for an access.
template <typename Slot>
Slot make_slot(const AccessEvent& ev) {
  Slot s;
  s.loc = ev.loc;
  s.tag = addr_tag(ev.addr);
  for (std::size_t i = 0; i < kLoopLevels; ++i) s.loops[i] = ev.loops[i];
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    s.tid = ev.tid;
    s.ts = ev.ts;
  }
  return s;
}

/// Result of the loop-context comparison: the carrying loop (0 = not
/// carried) and the carried iteration distance (Alchemist-style).
struct CarriedResult {
  std::uint32_t loop = 0;
  std::uint32_t distance = 0;
};

/// Level-pair match: src context `a` and sink context `b` refer to the same
/// dynamic entry of the same loop.  Sets `matched`; returns the loop id and
/// iteration distance when the iterations differ (the dependence is carried
/// by that loop).
inline CarriedResult match_loop_level(const LoopCtx& a, const LoopCtx& b,
                                      bool& matched) {
  if (a.loop != 0 && a.loop == b.loop && a.entry == b.entry) {
    matched = true;
    if (a.iter != b.iter)
      return {b.loop, b.iter > a.iter ? b.iter - a.iter : a.iter - b.iter};
  }
  return {};
}

/// The loop carrying the dependence from recorded source `src` to current
/// sink `sink` (loop 0 = none).  Matches on the sink's innermost level
/// first.  `matched` reports whether src and sink share *any* dynamic loop
/// entry — if not, the analysis must fall back to its source-order
/// heuristic.
template <typename Slot>
CarriedResult carried_by(const Slot& src, const AccessEvent& sink,
                         bool& matched) {
  matched = false;
  for (std::size_t t = 0; t < kLoopLevels; ++t)
    for (std::size_t s = 0; s < kLoopLevels; ++s) {
      const CarriedResult r = match_loop_level(src.loops[s], sink.loops[t], matched);
      if (r.loop != 0) return r;
    }
  return {};
}

/// Flags qualifying the dependence built from recorded source `src` and
/// current sink `sink`.
///
/// When the slot's address tag does not match the sink's address, the slot
/// was written by a *colliding* address: the dependence record itself is
/// still built (the paper's approximate-membership semantics), but the
/// loop-context and timestamp comparisons would compare two unrelated
/// accesses, so no qualifying flags are derived (see slots.hpp).
template <typename Slot>
std::uint8_t classify_dep(const Slot& src, const AccessEvent& sink,
                          CarriedResult& carried) {
  std::uint8_t f = 0;
  carried = {};
  const bool same_address = src.tag == addr_tag(sink.addr);
  if (same_address) {
    bool matched = false;
    carried = carried_by(src, sink, matched);
    if (carried.loop != 0) {
      f |= kLoopCarried;
    } else if (!matched && (src.loops[0].loop != 0 || sink.loops[0].loop != 0)) {
      f |= kCrossLoop;
    }
  }
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    if (src.tid != sink.tid) f |= kCrossThread;
    // A worker expects increasing timestamps per address (Sec. V-B); a
    // reversal proves the access/push pair was not mutually excluded with
    // the recorded one — a potential data race.
    if (same_address && src.ts > sink.ts) f |= kReversed;
  }
  return f;
}

template <AccessStore Store>
class DetectorCore {
 public:
  using Slot = typename Store::slot_type;

  /// Takes ownership of the two (empty) signatures.
  DetectorCore(Store sig_read, Store sig_write)
      : sig_read_(std::move(sig_read)), sig_write_(std::move(sig_write)) {}

  /// Processes one access in program order (Algorithm 1).
  void process(const AccessEvent& ev, DepMap& deps) {
    if (ev.is_free()) {
      // Variable-lifetime analysis: obsolete addresses leave the signatures
      // so later re-use of the memory does not fabricate dependences.
      sig_read_.remove(ev.addr);
      sig_write_.remove(ev.addr);
      return;
    }
    if (ev.is_write()) {
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kWaw, deps);
      } else {
        deps.add(init_key(ev), 0);
      }
      if (const Slot* r = sig_read_.find(ev.addr)) {
        emit(ev, *r, DepType::kWar, deps);
      }
      sig_write_.insert(ev.addr, make_slot<Slot>(ev));
    } else {
      // RAR dependences are ignored (Sec. III-B): most analyses do not need
      // them, so reads only consult the write signature.
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kRaw, deps);
      }
      sig_read_.insert(ev.addr, make_slot<Slot>(ev));
    }
  }

  Store& read_signature() { return sig_read_; }
  Store& write_signature() { return sig_write_; }

  /// Migration support (Sec. IV-A): extract/adopt the per-address state.
  struct AddrState {
    bool has_read = false;
    bool has_write = false;
    Slot read_slot{};
    Slot write_slot{};
  };

  AddrState extract_state(std::uint64_t addr) {
    AddrState st;
    if (auto r = sig_read_.extract(addr)) {
      st.has_read = true;
      st.read_slot = *r;
    }
    if (auto w = sig_write_.extract(addr)) {
      st.has_write = true;
      st.write_slot = *w;
    }
    return st;
  }

  void adopt_state(std::uint64_t addr, const AddrState& st) {
    if (st.has_read) sig_read_.insert(addr, st.read_slot);
    if (st.has_write) sig_write_.insert(addr, st.write_slot);
  }

 private:
  void emit(const AccessEvent& sink, const Slot& src, DepType type,
            DepMap& deps) {
    CarriedResult carried;
    const std::uint8_t flags = classify_dep(src, sink, carried);
    DepKey k;
    k.sink_loc = sink.loc;
    k.src_loc = src.loc;
    k.var = sink.var;
    k.sink_tid = sink.tid;
    if constexpr (std::is_same_v<Slot, MtSlot>)
      k.src_tid = static_cast<std::uint16_t>(src.tid);
    k.type = type;
    deps.add(k, flags, carried.loop, carried.distance);
  }

  static DepKey init_key(const AccessEvent& sink) {
    DepKey k;
    k.sink_loc = sink.loc;
    k.src_loc = 0;
    k.var = sink.var;
    k.sink_tid = sink.tid;
    k.type = DepType::kInit;
    return k;
  }

  Store sig_read_;
  Store sig_write_;
};

}  // namespace depprof
