#pragma once
// Construction-time storage dispatch.
//
// The StorageKind enum is resolved to a concrete AccessStore type exactly
// once, when a profiler is built.  Everything downstream of this file is a
// fully monomorphized DetectorCore<Store> instantiation: the per-access
// detect loop never branches (or virtually dispatches) on the backend.

#include <type_traits>

#include "core/profiler.hpp"
#include "sig/access_store.hpp"
#include "sig/hash_table_recorder.hpp"
#include "sig/packed_shadow_store.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/shadow_memory.hpp"
#include "sig/signature.hpp"
#include "sig/slots.hpp"

namespace depprof {

namespace detail {
template <typename T>
struct is_signature : std::false_type {};
template <typename S>
struct is_signature<Signature<S>> : std::true_type {};
template <typename T>
struct is_hash_table : std::false_type {};
template <typename S>
struct is_hash_table<HashTableRecorder<S>> : std::true_type {};
}  // namespace detail

/// Builds one empty store of the given backend from the configuration.
/// Signature sizing (slots, hash) and hash-table bucket counts come from the
/// config; the exact baselines start empty.
template <AccessStore Store>
Store make_store(const ProfilerConfig& c) {
  if constexpr (detail::is_signature<Store>::value)
    return Store(c.slots, c.sig_hash);
  else if constexpr (detail::is_hash_table<Store>::value)
    return Store(c.slots);
  else
    return Store{};
}

/// Resolves (storage kind, target kind) to a concrete store type and calls
/// `fn` with a std::type_identity tag for it.  This switch is the single
/// place the StorageKind enum is branched on; both profiler factories go
/// through it, which is what makes every backend available to both the
/// serial profiler and the parallel pipeline.
template <typename Fn>
auto with_store(const ProfilerConfig& c, Fn&& fn) {
  auto dispatch = [&]<typename Slot>() {
    switch (c.storage) {
      case StorageKind::kPerfect:
        return fn(std::type_identity<PerfectSignature<Slot>>{});
      case StorageKind::kShadow:
        return fn(std::type_identity<ShadowMemory<Slot>>{});
      case StorageKind::kHashTable:
        return fn(std::type_identity<HashTableRecorder<Slot>>{});
      case StorageKind::kPacked:
        return fn(std::type_identity<PackedShadowStore<Slot>>{});
      case StorageKind::kSignature:
      default:
        return fn(std::type_identity<Signature<Slot>>{});
    }
  };
  return c.mt_targets ? dispatch.template operator()<MtSlot>()
                      : dispatch.template operator()<SeqSlot>();
}

}  // namespace depprof
