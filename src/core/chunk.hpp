#pragma once
// Chunks and the chunk recycling pool (Fig. 2).
//
// "The main thread ... collects memory accesses in chunks, whose size can be
// configured ...  Once a chunk is full, the main thread pushes it into the
// queue of the thread responsible for the accesses recorded in it. ...
// Empty chunks are recycled and can be reused."
//
// Besides data, chunks carry in-band pipeline commands: the stop sentinel
// and the two halves of the signature-state migration protocol used by the
// load balancer (Sec. IV-A).  Commands ride the same FIFO as data, which is
// what makes migration sound: a MIGRATE_OUT is processed only after every
// access the old owner had already been handed, and an ADOPT is processed
// before any access routed to the new owner afterwards.
//
// Ownership/epoch invariant (ISSUE 7): every chunk carries its current
// owner (pool / producer / queued-to-worker-w / worker-w) and a generation
// tag bumped per recycle.  Each hand-off validates the transition with a
// single atomic exchange, so a double pop, a wrong-worker delivery, or a
// stale recycle fires sched::note_violation immediately — the oracle
// harness fails any case whose run bumped that counter.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "common/mem_stats.hpp"
#include "queue/queues.hpp"
#include "queue/wait_strategy.hpp"
#include "sched/sched.hpp"
#include "trace/event.hpp"

namespace depprof {

struct Chunk {
  enum class Kind : std::uint32_t {
    kData = 0,
    kStop = 1,        ///< worker shutdown sentinel
    kMigrateOut = 2,  ///< old owner: extract state for `addr` into mailbox `payload`
    kAdopt = 3,       ///< new owner: adopt state for `addr` from mailbox `payload`
  };

  /// Compile-time capacity; ProfilerConfig::chunk_size (<= this) sets the
  /// effective fill level.
  static constexpr std::size_t kCapacity = 1024;

  /// Payload bytes of the event array, reinterpreted as raw storage when
  /// the chunk carries packed wire records (core/wire.hpp).
  static constexpr std::size_t kPayloadBytes = kCapacity * sizeof(AccessEvent);

  // Owner encodings for the hand-off invariant.  The low 16 bits carry the
  // worker index for the queued/worker states.
  static constexpr std::uint32_t kOwnerPool = 0;
  static constexpr std::uint32_t kOwnerProducer = 1;
  static constexpr std::uint32_t kOwnerQueued = 0x10000;
  static constexpr std::uint32_t kOwnerWorker = 0x20000;

  Kind kind = Kind::kData;
  std::uint32_t count = 0;    ///< raw events (packed: logical events carried)
  std::uint32_t payload = 0;  ///< migration mailbox index
  std::uint64_t addr = 0;     ///< migrated address
  /// True when `events` holds `bytes` bytes of packed wire records instead
  /// of `count` raw AccessEvents.
  bool packed = false;
  std::uint32_t records = 0;  ///< wire records in a packed chunk
  std::uint32_t bytes = 0;    ///< payload bytes used in a packed chunk
  /// Hand-off invariant state: current owner + recycle generation.
  std::atomic<std::uint32_t> owner{kOwnerPool};
  std::atomic<std::uint32_t> gen{0};
  std::array<AccessEvent, kCapacity> events;

  unsigned char* payload_bytes() {
    return reinterpret_cast<unsigned char*>(events.data());
  }
  const unsigned char* payload_bytes() const {
    return reinterpret_cast<const unsigned char*>(events.data());
  }

  /// Queue-bandwidth cost of this chunk's payload (obs bytes_on_wire).
  std::size_t wire_bytes() const {
    return packed ? bytes : static_cast<std::size_t>(count) * sizeof(AccessEvent);
  }
};

/// Validates one ownership hand-off: atomically installs `next` and flags a
/// violation when the chunk was not in the expected prior state.  Always on
/// — one exchange per chunk per hop, nowhere near the per-event path.
inline void chunk_handoff(Chunk& c, std::uint32_t expect, std::uint32_t next,
                          const char* site) {
  const std::uint32_t prev =
      c.owner.exchange(next, std::memory_order_acq_rel);
  if (prev != expect) {
    char what[96];
    std::snprintf(what, sizeof(what), "owner=0x%x expected=0x%x gen=%u",
                  prev, expect, c.gen.load(std::memory_order_relaxed));
    sched::note_violation(site, what);
  }
}

/// Lock-free recycling pool of chunks.  Workers release consumed chunks;
/// producers acquire them back.
///
/// Sealed mode (sequential targets — the default pipeline): every chunk the
/// run can ever have in flight is allocated at construction, i.e. before
/// the instrumented target starts running, and an acquire that finds the
/// free list empty BLOCKS (wait_strategy ladder) for a recycled chunk
/// instead of allocating.  This is the fix for the unpacked workers=8
/// cross-attribution flake: schedule-dependent pool-miss allocations on the
/// main thread used to perturb the target's own heap layout mid-run, which
/// could shift a target allocation into modulo-signature aliasing range of
/// another array (see ROADMAP "root cause").  Steady-state profiling now
/// performs no allocation by construction — the property the paper's
/// lock-free design relies on, here load-bearing for correctness too.
///
/// Unsealed mode (MT targets, whose producer count is unbounded): the pool
/// may still grow on demand; at most `max_pooled` idle chunks are retained,
/// a release beyond that deletes the chunk.  Every live chunk — idle or in
/// flight — is charged to MemStats kQueues; the charge is dropped when the
/// chunk is deleted (spill or pool teardown).  The pool owns every chunk it
/// ever handed out, so teardown reclaims in-flight chunks too; the
/// owned-set lock is taken only on allocation and spill, never on the
/// steady-state acquire/release recycle path.
class ChunkPool {
 public:
  /// Default retention cap: 256 idle chunks = 16 MiB of chunk storage.
  explicit ChunkPool(std::size_t max_pooled = 256, std::size_t prealloc = 0,
                     bool sealed = false, WaitKind wait = WaitKind::kPark)
      : free_list_(std::max(max_pooled, prealloc)),
        sealed_(sealed),
        wait_(wait) {
    for (std::size_t i = 0; i < prealloc; ++i) {
      Chunk* c = allocate();
      if (free_list_.try_push(c))
        pooled_.fetch_add(1, std::memory_order_relaxed);
      else
        destroy(c);  // unreachable: capacity >= prealloc
    }
  }

  /// Acquires a recycled chunk.  Sealed pools block for one; unsealed pools
  /// allocate a fresh chunk when the free list is empty.  Every header
  /// field is reset here, so a recycled chunk can never leak a stale
  /// `packed` flag, fill level, or migration addressing into its next use.
  Chunk* acquire() {
    sched::point("pool.acquire");
    Chunk* c = nullptr;
    if (free_list_.try_pop(c)) {
      pooled_.fetch_sub(1, std::memory_order_relaxed);
    } else if (!sealed_) {
      c = allocate();
    } else {
      // Sealed: the fourth blocking site of the pipeline.  Workers always
      // drain and release, so waiting (not allocating) is deadlock-free —
      // and keeps the target's heap untouched mid-run.
      acquire_stalls_.fetch_add(1, std::memory_order_relaxed);
      wait_until(wait_, recycled_, [&] {
        if (!free_list_.try_pop(c)) return false;
        pooled_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      });
    }
    chunk_handoff(*c, Chunk::kOwnerPool, Chunk::kOwnerProducer,
                  "pool.acquire");
    c->gen.fetch_add(1, std::memory_order_relaxed);
    c->kind = Chunk::Kind::kData;
    c->count = 0;
    c->payload = 0;
    c->addr = 0;
    c->packed = false;
    c->records = 0;
    c->bytes = 0;
    return c;
  }

  /// Returns a chunk for reuse, or frees it when the pool is at its cap.
  /// Valid prior owners: a worker (the normal recycle) or a producer (a
  /// staged chunk returned unsent).
  void release(Chunk* c) {
    sched::point("pool.release");
    const std::uint32_t prev =
        c->owner.exchange(Chunk::kOwnerPool, std::memory_order_acq_rel);
    if (prev != Chunk::kOwnerProducer &&
        (prev & Chunk::kOwnerWorker) == 0) {
      char what[96];
      std::snprintf(what, sizeof(what), "owner=0x%x gen=%u", prev,
                    c->gen.load(std::memory_order_relaxed));
      sched::note_violation("pool.release", what);
    }
    if (free_list_.try_push(c)) {
      pooled_.fetch_add(1, std::memory_order_relaxed);
      // A sealed-pool producer may be blocked in acquire().
      recycled_.notify_all();
      return;
    }
    destroy(c);
  }

  /// Live chunks (idle + in flight).  Constant for sealed pools — the
  /// no-steady-state-allocation invariant the regression tests pin down.
  std::size_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Idle chunks currently retained in the free list.
  std::size_t pool_size() const {
    return pooled_.load(std::memory_order_relaxed);
  }

  /// Times acquire() found a sealed pool empty and had to wait.
  std::uint64_t acquire_stalls() const {
    return acquire_stalls_.load(std::memory_order_relaxed);
  }

  bool sealed() const { return sealed_; }

  ~ChunkPool() {
    for (Chunk* c : owned_) {
      delete c;
      MemStats::instance().add(MemComponent::kQueues,
                               -static_cast<std::int64_t>(sizeof(Chunk)));
    }
  }

 private:
  Chunk* allocate() {
    Chunk* c = new Chunk();
    {
      std::lock_guard lock(owned_mu_);
      owned_.insert(c);
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    MemStats::instance().add(MemComponent::kQueues,
                             static_cast<std::int64_t>(sizeof(Chunk)));
    return c;
  }

  void destroy(Chunk* c) {
    {
      std::lock_guard lock(owned_mu_);
      owned_.erase(c);
    }
    delete c;
    allocated_.fetch_sub(1, std::memory_order_relaxed);
    MemStats::instance().add(MemComponent::kQueues,
                             -static_cast<std::int64_t>(sizeof(Chunk)));
  }

  MpmcQueue<Chunk*> free_list_;
  const bool sealed_;
  const WaitKind wait_;
  EventCount recycled_;
  std::mutex owned_mu_;
  std::unordered_set<Chunk*> owned_;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> pooled_{0};
  std::atomic<std::uint64_t> acquire_stalls_{0};
};

}  // namespace depprof
