#pragma once
// Chunks and the chunk recycling pool (Fig. 2).
//
// "The main thread ... collects memory accesses in chunks, whose size can be
// configured ...  Once a chunk is full, the main thread pushes it into the
// queue of the thread responsible for the accesses recorded in it. ...
// Empty chunks are recycled and can be reused."
//
// Besides data, chunks carry in-band pipeline commands: the stop sentinel
// and the two halves of the signature-state migration protocol used by the
// load balancer (Sec. IV-A).  Commands ride the same FIFO as data, which is
// what makes migration sound: a MIGRATE_OUT is processed only after every
// access the old owner had already been handed, and an ADOPT is processed
// before any access routed to the new owner afterwards.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/mem_stats.hpp"
#include "queue/queues.hpp"
#include "trace/event.hpp"

namespace depprof {

struct Chunk {
  enum class Kind : std::uint32_t {
    kData = 0,
    kStop = 1,        ///< worker shutdown sentinel
    kMigrateOut = 2,  ///< old owner: extract state for `addr` into mailbox `payload`
    kAdopt = 3,       ///< new owner: adopt state for `addr` from mailbox `payload`
  };

  /// Compile-time capacity; ProfilerConfig::chunk_size (<= this) sets the
  /// effective fill level.
  static constexpr std::size_t kCapacity = 1024;

  Kind kind = Kind::kData;
  std::uint32_t count = 0;
  std::uint32_t payload = 0;  ///< migration mailbox index
  std::uint64_t addr = 0;     ///< migrated address
  std::array<AccessEvent, kCapacity> events;
};

/// Lock-free recycling pool of chunks.  Workers release consumed chunks;
/// producers acquire them back; new chunks are allocated only when the free
/// list is empty, so steady-state profiling performs no allocation — the
/// property the paper's lock-free design relies on.
class ChunkPool {
 public:
  explicit ChunkPool(std::size_t max_pooled = 1u << 14)
      : free_list_(max_pooled) {}

  /// Acquires a recycled chunk or allocates a fresh one.
  Chunk* acquire() {
    Chunk* c = nullptr;
    if (free_list_.try_pop(c)) {
      c->kind = Chunk::Kind::kData;
      c->count = 0;
      return c;
    }
    auto owned = std::make_unique<Chunk>();
    c = owned.get();
    MemStats::instance().add(MemComponent::kQueues,
                             static_cast<std::int64_t>(sizeof(Chunk)));
    std::lock_guard lock(owned_mu_);
    owned_.push_back(std::move(owned));
    return c;
  }

  /// Returns a chunk for reuse.  If the free list is full (never in normal
  /// operation) the chunk simply stays owned and idle.
  void release(Chunk* c) { (void)free_list_.try_push(c); }

  std::size_t allocated() const {
    std::lock_guard lock(owned_mu_);
    return owned_.size();
  }

  ~ChunkPool() {
    MemStats::instance().add(
        MemComponent::kQueues,
        -static_cast<std::int64_t>(sizeof(Chunk) * owned_.size()));
  }

 private:
  MpmcQueue<Chunk*> free_list_;
  mutable std::mutex owned_mu_;
  std::vector<std::unique_ptr<Chunk>> owned_;
};

}  // namespace depprof
