#pragma once
// Chunks and the chunk recycling pool (Fig. 2).
//
// "The main thread ... collects memory accesses in chunks, whose size can be
// configured ...  Once a chunk is full, the main thread pushes it into the
// queue of the thread responsible for the accesses recorded in it. ...
// Empty chunks are recycled and can be reused."
//
// Besides data, chunks carry in-band pipeline commands: the stop sentinel
// and the two halves of the signature-state migration protocol used by the
// load balancer (Sec. IV-A).  Commands ride the same FIFO as data, which is
// what makes migration sound: a MIGRATE_OUT is processed only after every
// access the old owner had already been handed, and an ADOPT is processed
// before any access routed to the new owner afterwards.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/mem_stats.hpp"
#include "queue/queues.hpp"
#include "trace/event.hpp"

namespace depprof {

struct Chunk {
  enum class Kind : std::uint32_t {
    kData = 0,
    kStop = 1,        ///< worker shutdown sentinel
    kMigrateOut = 2,  ///< old owner: extract state for `addr` into mailbox `payload`
    kAdopt = 3,       ///< new owner: adopt state for `addr` from mailbox `payload`
  };

  /// Compile-time capacity; ProfilerConfig::chunk_size (<= this) sets the
  /// effective fill level.
  static constexpr std::size_t kCapacity = 1024;

  /// Payload bytes of the event array, reinterpreted as raw storage when
  /// the chunk carries packed wire records (core/wire.hpp).
  static constexpr std::size_t kPayloadBytes = kCapacity * sizeof(AccessEvent);

  Kind kind = Kind::kData;
  std::uint32_t count = 0;    ///< raw events (packed: logical events carried)
  std::uint32_t payload = 0;  ///< migration mailbox index
  std::uint64_t addr = 0;     ///< migrated address
  /// True when `events` holds `bytes` bytes of packed wire records instead
  /// of `count` raw AccessEvents.
  bool packed = false;
  std::uint32_t records = 0;  ///< wire records in a packed chunk
  std::uint32_t bytes = 0;    ///< payload bytes used in a packed chunk
  std::array<AccessEvent, kCapacity> events;

  unsigned char* payload_bytes() {
    return reinterpret_cast<unsigned char*>(events.data());
  }
  const unsigned char* payload_bytes() const {
    return reinterpret_cast<const unsigned char*>(events.data());
  }

  /// Queue-bandwidth cost of this chunk's payload (obs bytes_on_wire).
  std::size_t wire_bytes() const {
    return packed ? bytes : static_cast<std::size_t>(count) * sizeof(AccessEvent);
  }
};

/// Lock-free recycling pool of chunks.  Workers release consumed chunks;
/// producers acquire them back; new chunks are allocated only when the free
/// list is empty, so steady-state profiling performs no allocation — the
/// property the paper's lock-free design relies on.
///
/// The pool is bounded: at most `max_pooled` idle chunks are retained; a
/// release that finds the free list full deletes the chunk instead of
/// hoarding it, so a produce burst (many chunks in flight at once) no
/// longer ratchets the pool's footprint up for the rest of the run.  Every
/// live chunk — idle or in flight — is charged to MemStats kQueues; the
/// charge is dropped when the chunk is deleted (spill or pool teardown).
/// The pool owns every chunk it ever handed out, so teardown reclaims
/// in-flight chunks too; the owned-set lock is taken only on allocation and
/// spill, never on the steady-state acquire/release recycle path.
class ChunkPool {
 public:
  /// Default cap: 256 idle chunks = 16 MiB of retained chunk storage.
  explicit ChunkPool(std::size_t max_pooled = 256) : free_list_(max_pooled) {}

  /// Acquires a recycled chunk or allocates a fresh one.
  Chunk* acquire() {
    Chunk* c = nullptr;
    if (free_list_.try_pop(c)) {
      pooled_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      c = new Chunk();
      {
        std::lock_guard lock(owned_mu_);
        owned_.insert(c);
      }
      allocated_.fetch_add(1, std::memory_order_relaxed);
      MemStats::instance().add(MemComponent::kQueues,
                               static_cast<std::int64_t>(sizeof(Chunk)));
    }
    c->kind = Chunk::Kind::kData;
    c->count = 0;
    c->packed = false;
    c->records = 0;
    c->bytes = 0;
    return c;
  }

  /// Returns a chunk for reuse, or frees it when the pool is at its cap.
  void release(Chunk* c) {
    if (free_list_.try_push(c)) {
      pooled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    destroy(c);
  }

  /// Live chunks (idle + in flight).
  std::size_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Idle chunks currently retained in the free list.
  std::size_t pool_size() const {
    return pooled_.load(std::memory_order_relaxed);
  }

  ~ChunkPool() {
    for (Chunk* c : owned_) {
      delete c;
      MemStats::instance().add(MemComponent::kQueues,
                               -static_cast<std::int64_t>(sizeof(Chunk)));
    }
  }

 private:
  void destroy(Chunk* c) {
    {
      std::lock_guard lock(owned_mu_);
      owned_.erase(c);
    }
    delete c;
    allocated_.fetch_sub(1, std::memory_order_relaxed);
    MemStats::instance().add(MemComponent::kQueues,
                             -static_cast<std::int64_t>(sizeof(Chunk)));
  }

  MpmcQueue<Chunk*> free_list_;
  std::mutex owned_mu_;
  std::unordered_set<Chunk*> owned_;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> pooled_{0};
};

}  // namespace depprof
