#pragma once
// Dependence representation (Sec. III-A) and the merged dependence map.
//
// A dependence is the triple <sink, type, source>: `type` is RAW/WAR/WAW
// plus the special INIT marking the first write to an address; sink and
// source are source-code locations (with thread ids for parallel targets,
// Fig. 3) and the variable name involved.  Identical dependences are merged
// online — the paper reports this shrinks NAS output from 6.1 GB to 53 KB
// (factor ~1e5); the map also counts raw instances so the merge_factor bench
// can reproduce that ratio.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/location.hpp"
#include "common/mem_stats.hpp"

namespace depprof {

enum class DepType : std::uint8_t {
  kInit = 0,  ///< first write to an address ("{INIT *}" in Fig. 1)
  kRaw = 1,
  kWar = 2,
  kWaw = 3,
};

const char* dep_type_name(DepType t);

/// Per-instance qualifiers, OR-ed together when instances merge.
enum DepFlags : std::uint8_t {
  /// Source and sink share an enclosing dynamic loop entry and executed in
  /// different iterations of it — a loop-carried dependence (input to
  /// Sec. VII-A).  The carrier is the innermost *common* loop; the per-level
  /// buckets in DepInfo say which level and at what distance.
  kLoopCarried = 1u << 0,
  /// Source and sink lie in different innermost dynamic loop entries (they
  /// may still share an outer loop — see the level buckets).
  kCrossLoop = 1u << 1,
  /// Source and sink executed on different target threads (Sec. V) — the
  /// raw material of communication patterns (Sec. VII-B).
  kCrossThread = 1u << 2,
  /// Timestamp order violated when the worker processed the accesses: the
  /// push did not happen atomically with the access, exposing a potential
  /// data race (Sec. V-B).
  kReversed = 1u << 3,
  /// Both conflicting accesses of this instance executed inside lock
  /// regions (Sec. V-B): the pair was mutually excluded by the target's own
  /// synchronization, so it is never a race candidate.  Map-side only —
  /// derived by the detector from the two events' in-lock-region bits, never
  /// present on AccessEvent::flags or the wire format.
  kLockProtected = 1u << 4,
};

/// Identity of a merged dependence.
struct DepKey {
  std::uint32_t sink_loc = 0;  ///< packed SourceLocation of the later access
  std::uint32_t src_loc = 0;   ///< packed SourceLocation of the earlier access (0 for INIT)
  std::uint32_t var = 0;       ///< variable-name id
  std::uint16_t sink_tid = 0;
  std::uint16_t src_tid = 0;
  DepType type = DepType::kInit;

  friend bool operator==(const DepKey&, const DepKey&) = default;
};

struct DepKeyHash {
  std::size_t operator()(const DepKey& k) const;
};

/// Nest levels DepInfo keeps per-level carry buckets for.  Matches the
/// event's root-anchored iteration window (kNestIters in trace/event.hpp;
/// detector.hpp static_asserts the two agree); common levels deeper than
/// this fold into the last level.
inline constexpr std::size_t kNestLevels = 7;

/// Per-instance nest attribution of one dependence: the innermost loop
/// entry common to source and sink, resolved by the detector (and,
/// independently, the oracle) from the two context ids.
struct DepAttribution {
  std::uint32_t loop = 0;      ///< static loop id of the common loop; 0 = none
  std::uint32_t level = 0;     ///< 1-based nest depth of that loop; 0 = none
  std::uint32_t distance = 0;  ///< |sink iter - src iter| at that level
  /// False when the common level lies beyond the event iteration window
  /// (nest deeper than kNestIters): the instance is treated as carried at
  /// distance >= 2 — the conservative bucket.
  bool distance_known = true;
};

/// One nest level's aggregated carry evidence: how many instances had their
/// innermost common loop at this depth, bucketed by carried distance
/// (0 = same iteration, 1 = adjacent iterations, >= 2 = farther), plus the
/// max-join of the common-loop ids seen here.
struct DepLevel {
  std::uint32_t loop = 0;  ///< max static loop id attributed at this depth
  std::uint64_t d0 = 0;    ///< instances at distance 0 (not carried)
  std::uint64_t d1 = 0;    ///< instances at distance exactly 1
  std::uint64_t d2p = 0;   ///< instances at distance >= 2 (or unknown)

  std::uint64_t carried() const { return d1 + d2p; }
};

/// Aggregated facts about one merged dependence.  Every field is a
/// commutative, associative join (count sum, flags OR, per-level loop max
/// and bucket sums), so the merged map is independent of the order in which
/// instances of different addresses reach the map.  That order freedom is
/// what lets the front-end dedup cache reorder events across words while
/// provably preserving the map (see DESIGN.md "Front-end event reduction").
struct DepInfo {
  std::uint64_t count = 0;  ///< dynamic instances merged into this record
  /// Instances whose timestamps arrived reversed (kReversed set) — the OR in
  /// `flags` says *whether* a reversal happened, this says *how often*, which
  /// is what a race report must quote (one reversal among N instances does
  /// not make all N racy).
  std::uint64_t reversed = 0;
  /// Instances whose both endpoints were inside lock regions (kLockProtected
  /// set); when locked == count, every observed conflict was mutually
  /// excluded and the key is suppressed as a race candidate.
  std::uint64_t locked = 0;
  std::uint8_t flags = 0;  ///< OR of instance DepFlags
  /// levels[d] aggregates the instances whose innermost common loop sits at
  /// nest depth d+1 (levels[kNestLevels-1] also absorbs deeper ones).
  DepLevel levels[kNestLevels];

  /// Deepest level with carried instances; 0 when never carried.
  std::uint32_t carried_level() const {
    for (std::size_t d = kNestLevels; d > 0; --d)
      if (levels[d - 1].carried() != 0) return static_cast<std::uint32_t>(d);
    return 0;
  }
  /// Loop id recorded at the deepest carried level (0 when never carried).
  std::uint32_t carried_loop() const {
    const std::uint32_t lvl = carried_level();
    return lvl == 0 ? 0 : levels[lvl - 1].loop;
  }
  /// True when some carried instance was attributed to `loop` (any level).
  bool carried_by(std::uint32_t loop) const {
    for (const DepLevel& l : levels)
      if (l.loop == loop && l.carried() != 0) return true;
    return false;
  }
  /// Smallest carried-distance bucket floor over all levels: 1, 2 (= ">=2"),
  /// or 0 when never carried.
  std::uint32_t min_carried_bucket() const {
    std::uint32_t best = 0;
    for (const DepLevel& l : levels) {
      if (l.d1 != 0) return 1;
      if (l.d2p != 0) best = 2;
    }
    return best;
  }
};

/// The per-instance update rule: count, flags, and the level bucket of the
/// instance's attribution.  Shared by DepMap::add and the batched kernel's
/// stack accumulator so the two paths cannot drift apart.  Note the level
/// buckets key on *depth*: two different static loops at the same depth
/// under one DepKey share a row (the loop id max-joins) — rare in practice,
/// and the oracle aggregates identically, so the differential contract is
/// unaffected.
inline void apply_dep_instance(DepInfo& info, std::uint8_t flags,
                               const DepAttribution& at) {
  info.count += 1;
  info.flags |= flags;
  if (flags & kReversed) info.reversed += 1;
  if (flags & kLockProtected) info.locked += 1;
  if (at.loop != 0 && at.level != 0) {
    const std::size_t d =
        at.level <= kNestLevels ? at.level - 1 : kNestLevels - 1;
    DepLevel& lvl = info.levels[d];
    lvl.loop = std::max(lvl.loop, at.loop);
    if (!at.distance_known || at.distance >= 2)
      lvl.d2p += 1;
    else if (at.distance == 1)
      lvl.d1 += 1;
    else
      lvl.d0 += 1;
  }
}

/// Sec. V-B race triage of one merged dependence.  Shared by the profilers'
/// per-run counter publication and by find_races() so snapshot counters and
/// the rendered report agree by construction.
enum class RaceCandidate : std::uint8_t {
  kNone = 0,            ///< not a cross-thread conflict (or INIT)
  kConfirmed,           ///< >= 1 timestamp reversal: no mutual exclusion
  kUnconfirmed,         ///< cross-thread, never reversed, not fully locked
  kSuppressedByLock,    ///< every observed instance was inside lock regions
};

inline RaceCandidate classify_race_candidate(const DepKey& key,
                                             const DepInfo& info) {
  // INIT records the first write to an address — no conflicting pair.
  if (key.type == DepType::kInit) return RaceCandidate::kNone;
  if (info.reversed != 0) return RaceCandidate::kConfirmed;
  if ((info.flags & kCrossThread) == 0) return RaceCandidate::kNone;
  if (info.locked == info.count) return RaceCandidate::kSuppressedByLock;
  return RaceCandidate::kUnconfirmed;
}

/// Merged dependence storage ("local dependence storage" / "global
/// dependence storage" of Fig. 2).  Not thread-safe; the pipeline keeps one
/// per worker and merges at the end.
class DepMap {
 public:
  DepMap() = default;
  ~DepMap();
  DepMap(DepMap&&) noexcept;
  DepMap& operator=(DepMap&&) noexcept;
  DepMap(const DepMap&) = delete;
  DepMap& operator=(const DepMap&) = delete;

  /// Records one dependence instance.  `at` is the instance's nest
  /// attribution (at.loop == 0 when the endpoints share no loop).
  void add(const DepKey& key, std::uint8_t flags,
           const DepAttribution& at = {});

  /// Records `n` unqualified instances of `key` in one map probe — exactly
  /// equivalent to calling add(key, 0) n times.  The batched detect kernel
  /// uses this to fold a batch's INIT records (which carry no flags or
  /// attribution) into the map once per distinct key instead of per event.
  void add_many(const DepKey& key, std::uint64_t n);

  /// Folds a pre-aggregated record (`info.count` instances) into the map in
  /// one probe, with exactly the result of add()ing those instances one at a
  /// time.  The batched detect kernel accumulates each batch's records in a
  /// small local table and folds one entry per distinct key.
  void fold(const DepKey& key, const DepInfo& info);

  /// Merges all entries of `other` into this map, leaving `other` intact.
  /// Every entry newly inserted here is *additional* live memory, so prefer
  /// merge_from() when `other` is being retired.
  void merge(const DepMap& other);

  /// Transfer merge (end-of-run global merge): folds `other` into this map
  /// and empties it as it goes.  MemStats-wise each entry either moves
  /// (ownership transfer, no net change) or collapses into an existing entry
  /// (net release), so peak kDepMaps never exceeds the live entry count —
  /// the non-destructive merge() double-counted every transferred entry for
  /// the duration of the merge window.
  void merge_from(DepMap& other);

  const DepInfo* find(const DepKey& key) const;
  std::size_t size() const { return map_.size(); }

  /// Total dependence instances recorded, merged or not — the numerator of
  /// the paper's output-size reduction factor.
  std::uint64_t instances() const { return instances_; }

  /// Bytes an unmerged record stream would occupy (one fixed-size record per
  /// instance), vs bytes() of the merged map.
  static constexpr std::size_t kRawRecordBytes = sizeof(DepKey) + sizeof(std::uint8_t);
  std::size_t bytes() const { return map_.size() * kEntryBytes; }

  /// Stable snapshot for iteration/output (sorted by sink, then type/source).
  std::vector<std::pair<DepKey, DepInfo>> sorted() const;

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

  void clear();

 private:
  static constexpr std::size_t kEntryBytes = sizeof(DepKey) + sizeof(DepInfo) + 16;
  std::unordered_map<DepKey, DepInfo, DepKeyHash> map_;
  std::uint64_t instances_ = 0;
};

}  // namespace depprof
