#pragma once
// Dependence representation (Sec. III-A) and the merged dependence map.
//
// A dependence is the triple <sink, type, source>: `type` is RAW/WAR/WAW
// plus the special INIT marking the first write to an address; sink and
// source are source-code locations (with thread ids for parallel targets,
// Fig. 3) and the variable name involved.  Identical dependences are merged
// online — the paper reports this shrinks NAS output from 6.1 GB to 53 KB
// (factor ~1e5); the map also counts raw instances so the merge_factor bench
// can reproduce that ratio.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/location.hpp"
#include "common/mem_stats.hpp"

namespace depprof {

enum class DepType : std::uint8_t {
  kInit = 0,  ///< first write to an address ("{INIT *}" in Fig. 1)
  kRaw = 1,
  kWar = 2,
  kWaw = 3,
};

const char* dep_type_name(DepType t);

/// Per-instance qualifiers, OR-ed together when instances merge.
enum DepFlags : std::uint8_t {
  /// Source and sink share the innermost loop but executed in different
  /// iterations — a loop-carried dependence (input to Sec. VII-A).
  kLoopCarried = 1u << 0,
  /// Source and sink lie in different innermost loops.
  kCrossLoop = 1u << 1,
  /// Source and sink executed on different target threads (Sec. V) — the
  /// raw material of communication patterns (Sec. VII-B).
  kCrossThread = 1u << 2,
  /// Timestamp order violated when the worker processed the accesses: the
  /// push did not happen atomically with the access, exposing a potential
  /// data race (Sec. V-B).
  kReversed = 1u << 3,
};

/// Identity of a merged dependence.
struct DepKey {
  std::uint32_t sink_loc = 0;  ///< packed SourceLocation of the later access
  std::uint32_t src_loc = 0;   ///< packed SourceLocation of the earlier access (0 for INIT)
  std::uint32_t var = 0;       ///< variable-name id
  std::uint16_t sink_tid = 0;
  std::uint16_t src_tid = 0;
  DepType type = DepType::kInit;

  friend bool operator==(const DepKey&, const DepKey&) = default;
};

struct DepKeyHash {
  std::size_t operator()(const DepKey& k) const;
};

/// Aggregated facts about one merged dependence.
struct DepInfo {
  std::uint64_t count = 0;  ///< dynamic instances merged into this record
  std::uint8_t flags = 0;   ///< OR of instance DepFlags
  /// Max loop id over carried instances (0 if none).  The max join — like
  /// every other field here (sum, OR, min, max) — is commutative and
  /// associative, so the merged map is independent of the order in which
  /// instances of different addresses reach the map.  That order freedom is
  /// what lets the front-end dedup cache reorder events across words while
  /// provably preserving the map (see DESIGN.md "Front-end event reduction").
  std::uint32_t loop = 0;
  /// Dependence distance in iterations of the carrying loop (Alchemist-
  /// style): the min/max |sink iteration - source iteration| over carried
  /// instances.  A minimum distance d means up to d consecutive iterations
  /// are mutually independent.  0 until a carried instance is recorded.
  std::uint32_t min_distance = 0;
  std::uint32_t max_distance = 0;
};

/// Merged dependence storage ("local dependence storage" / "global
/// dependence storage" of Fig. 2).  Not thread-safe; the pipeline keeps one
/// per worker and merges at the end.
class DepMap {
 public:
  DepMap() = default;
  ~DepMap();
  DepMap(DepMap&&) noexcept;
  DepMap& operator=(DepMap&&) noexcept;
  DepMap(const DepMap&) = delete;
  DepMap& operator=(const DepMap&) = delete;

  /// Records one dependence instance.  `distance` is the carried iteration
  /// distance (0 when the instance is not loop-carried).
  void add(const DepKey& key, std::uint8_t flags, std::uint32_t loop = 0,
           std::uint32_t distance = 0);

  /// Records `n` unqualified instances of `key` in one map probe — exactly
  /// equivalent to calling add(key, 0) n times.  The batched detect kernel
  /// uses this to fold a batch's INIT records (which carry no flags, loop,
  /// or distance) into the map once per distinct key instead of per event.
  void add_many(const DepKey& key, std::uint64_t n);

  /// Folds a pre-aggregated record (`info.count` instances) into the map in
  /// one probe, with exactly the result of add()ing those instances one at a
  /// time.  The batched detect kernel accumulates each batch's records in a
  /// small local table and folds one entry per distinct key.
  void fold(const DepKey& key, const DepInfo& info);

  /// Merges all entries of `other` into this map, leaving `other` intact.
  /// Every entry newly inserted here is *additional* live memory, so prefer
  /// merge_from() when `other` is being retired.
  void merge(const DepMap& other);

  /// Transfer merge (end-of-run global merge): folds `other` into this map
  /// and empties it as it goes.  MemStats-wise each entry either moves
  /// (ownership transfer, no net change) or collapses into an existing entry
  /// (net release), so peak kDepMaps never exceeds the live entry count —
  /// the non-destructive merge() double-counted every transferred entry for
  /// the duration of the merge window.
  void merge_from(DepMap& other);

  const DepInfo* find(const DepKey& key) const;
  std::size_t size() const { return map_.size(); }

  /// Total dependence instances recorded, merged or not — the numerator of
  /// the paper's output-size reduction factor.
  std::uint64_t instances() const { return instances_; }

  /// Bytes an unmerged record stream would occupy (one fixed-size record per
  /// instance), vs bytes() of the merged map.
  static constexpr std::size_t kRawRecordBytes = sizeof(DepKey) + sizeof(std::uint8_t);
  std::size_t bytes() const { return map_.size() * kEntryBytes; }

  /// Stable snapshot for iteration/output (sorted by sink, then type/source).
  std::vector<std::pair<DepKey, DepInfo>> sorted() const;

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

  void clear();

 private:
  static constexpr std::size_t kEntryBytes = sizeof(DepKey) + sizeof(DepInfo) + 16;
  std::unordered_map<DepKey, DepInfo, DepKeyHash> map_;
  std::uint64_t instances_ = 0;
};

}  // namespace depprof
