#pragma once
// Packed paged shadow memory (SLAMP/PROMPT-style exact store).
//
// The exact baselines pay for precision in cache traffic: PerfectSignature
// and HashTableRecorder keep a full 40/56-byte slot per live address behind
// a hash probe, so every access touches a bucket walk plus one or two slot
// lines scattered across a node heap.  SLAMP's shadow memory shows the
// production alternative: a lazily-allocated page table whose leaf pages
// hold one packed machine word per tracked word of target memory, giving
// O(1) exact last-access lookups with memory proportional to *touched*
// pages and a single 8-byte line hit on the hot path.
//
// Packing format (one 64-bit word per tracked word-unit):
//
//        63            32 31             0
//       +----------------+----------------+
//       |   loc (u32)    |  nest token    |      word == 0  <=>  absent
//       +----------------+----------------+
//
//   loc   — packed SourceLocation of the last access (slots.hpp); loc != 0
//           for every recorded access, so the zero word doubles as the
//           empty sentinel and fresh mmap pages are valid empty pages.
//   token — interned (ctx, iters[kNestIters]) nest snapshot.  SLAMP packs
//           {instr:20, timestamp:44}; our "timestamp" is the root-anchored
//           iteration window that nest attribution needs, which repeats
//           across the few hundred accesses of a loop iteration — so it
//           interns into a small refcounted table instead of truncating.
//   tag   — NOT stored: the store is exact, so the recorded address equals
//           the probed address and addr_tag(addr) is recomputed on find().
//
// MT targets add a 16-byte sidecar entry per word (tid, flags, ts) on the
// same leaf page, after the word array.  The race check compares full
// 64-bit timestamps, so ts cannot be bit-packed into the word without
// breaking byte-identity with the exact oracle — readers and the MT/lock
// flag bits live in the sidecar instead (see DESIGN.md, "Packed paged
// shadow memory").
//
// The page table is a 4-level radix over the full 64-bit canonical
// word-unit space (offset 18 | L3 15 | L2 16 | L1 15 bits).  Leaf pages are
// 2 MiB word arrays allocated with huge::alloc — exactly one transparent
// huge page, so the batched kernel's 8-ahead prefetches hit TLB-resident
// lines — and every level is a power-of-two array indexed by masked address
// bits (no hashing anywhere on the walk).  Pages and directories are
// charged to MemComponent::kStore and released in full by clear()/teardown.
//
// find() decodes the packed word into a per-store scratch slot and returns
// its address: the pointer is valid until the next call on the same store.
// That matches how DetectorCore consumes stores — each find() result is
// fully folded into a dependence record before the next probe of the same
// store object (read and write stores are distinct objects) — and is
// asserted by the equivalence matrix, which pins this backend byte-for-byte
// to PerfectSignature across every driver.

#include <cstdint>
#include <cstring>
#include <new>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/huge_alloc.hpp"
#include "common/mem_stats.hpp"
#include "common/prefetch.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

/// Refcounted interner of (ctx, iters) nest snapshots — the 31-bit-safe
/// "timestamp" half of the packed word.  Loop streams reuse one snapshot
/// across every access of an iteration, so the table stays at the number of
/// *live distinct* snapshots (bounded by resident words, in practice a
/// handful), not the run length: tokens of overwritten or removed words are
/// released and their ids recycled through a free list.
class NestSnapshotIntern {
 public:
  struct Key {
    std::uint32_t ctx = 0;
    std::uint32_t iters[kNestIters] = {};
    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.ctx;
      for (const std::uint32_t it : k.iters) h = mix64(h ^ it);
      return static_cast<std::size_t>(h);
    }
  };

  /// Interns `k` (or bumps its refcount).  The one-entry cache makes the
  /// common repeat — same snapshot as the previous acquire — eight u32
  /// compares, no hash probe.
  std::uint32_t acquire(const Key& k) {
    if (last_id_ != kNoId && keys_[last_id_] == k) {
      ++refs_[last_id_];
      return last_id_;
    }
    auto [it, fresh] = ids_.try_emplace(k, 0);
    if (fresh) {
      std::uint32_t id;
      if (!free_.empty()) {
        id = free_.back();
        free_.pop_back();
        keys_[id] = k;
      } else {
        if (keys_.size() >= kMaxTokens) {  // wrap guard: never alias tokens
          ids_.erase(it);
          throw std::bad_alloc();
        }
        id = static_cast<std::uint32_t>(keys_.size());
        keys_.push_back(k);
        refs_.push_back(0);
      }
      it->second = id;
    }
    const std::uint32_t id = it->second;
    ++refs_[id];
    last_id_ = id;
    return id;
  }

  /// Drops one reference; a snapshot nobody records anymore leaves the
  /// table and its id returns to the free list.
  void release(std::uint32_t id) {
    if (--refs_[id] == 0) {
      ids_.erase(keys_[id]);
      free_.push_back(id);
      if (last_id_ == id) last_id_ = kNoId;
    }
  }

  const Key& key(std::uint32_t id) const { return keys_[id]; }

  void clear() {
    ids_.clear();
    keys_.clear();
    refs_.clear();
    free_.clear();
    last_id_ = kNoId;
  }

  /// Live distinct snapshots (tests: boundedness under churn).
  std::size_t live() const { return ids_.size(); }
  /// Ids ever minted — stays put while the free list recycles (wrap guard).
  std::size_t high_water() const { return keys_.size(); }

  std::size_t bytes() const {
    return keys_.capacity() * sizeof(Key) +
           (refs_.capacity() + free_.capacity()) * sizeof(std::uint32_t) +
           ids_.size() * (sizeof(Key) + 2 * sizeof(std::uint64_t));
  }

 private:
  static constexpr std::uint32_t kNoId = ~std::uint32_t{0};
  static constexpr std::size_t kMaxTokens = std::size_t{1} << 31;

  std::unordered_map<Key, std::uint32_t, KeyHash> ids_;
  std::vector<Key> keys_;            ///< id -> snapshot (decode side)
  std::vector<std::uint32_t> refs_;  ///< id -> live words recording it
  std::vector<std::uint32_t> free_;  ///< recycled ids
  std::uint32_t last_id_ = kNoId;
};

template <typename Slot>
class PackedShadowStore {
 public:
  using slot_type = Slot;
  static constexpr bool kMt = std::is_same_v<Slot, MtSlot>;

  // Radix split of the 64-bit canonical word-unit address, low to high.
  // A leaf page covers 2^18 words: exactly one 2 MiB transparent huge page
  // of packed words (huge::kHugeThreshold), i.e. 1 MiB of target memory.
  static constexpr unsigned kPageBits = 18;
  static constexpr unsigned kL3Bits = 15;
  static constexpr unsigned kL2Bits = 16;
  static constexpr unsigned kL1Bits = 15;
  static_assert(kPageBits + kL3Bits + kL2Bits + kL1Bits == 64);

  static constexpr std::size_t kPageWords = std::size_t{1} << kPageBits;
  static constexpr std::uint64_t kPageMask = kPageWords - 1;
  static constexpr std::size_t kL3Size = std::size_t{1} << kL3Bits;
  static constexpr std::size_t kL2Size = std::size_t{1} << kL2Bits;
  static constexpr std::size_t kL1Size = std::size_t{1} << kL1Bits;

  // --- branchless pack/unpack helpers (unit-tested at field boundaries) ---
  static constexpr std::uint64_t pack_word(std::uint32_t loc,
                                           std::uint32_t token) {
    return (std::uint64_t{loc} << 32) | token;
  }
  static constexpr std::uint32_t word_loc(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }
  static constexpr std::uint32_t word_token(std::uint64_t w) {
    return static_cast<std::uint32_t>(w);
  }

  PackedShadowStore() {
    root_ = static_cast<L2**>(alloc_block(kRootBytes));
  }

  ~PackedShadowStore() { destroy(); }

  PackedShadowStore(const PackedShadowStore&) = delete;
  PackedShadowStore& operator=(const PackedShadowStore&) = delete;

  PackedShadowStore(PackedShadowStore&& o) noexcept
      : intern_(std::move(o.intern_)),
        root_(std::exchange(o.root_, nullptr)),
        table_bytes_(std::exchange(o.table_bytes_, 0)),
        pages_(std::exchange(o.pages_, 0)),
        resident_(std::exchange(o.resident_, 0)) {}

  PackedShadowStore& operator=(PackedShadowStore&& o) noexcept {
    if (this != &o) {
      destroy();
      intern_ = std::move(o.intern_);
      root_ = std::exchange(o.root_, nullptr);
      table_bytes_ = std::exchange(o.table_bytes_, 0);
      pages_ = std::exchange(o.pages_, 0);
      resident_ = std::exchange(o.resident_, 0);
    }
    return *this;
  }

  const Slot* find(std::uint64_t addr) const {
    const Page* page = page_at(addr);
    if (page == nullptr) return nullptr;
    const std::size_t off = offset(addr);
    const std::uint64_t w = page->words[off];
    if (w == 0) return nullptr;
    scratch_.loc = word_loc(w);
    scratch_.tag = addr_tag(addr);  // exact store: recorded addr == probed
    const NestSnapshotIntern::Key& k = intern_.key(word_token(w));
    scratch_.ctx = k.ctx;
    for (std::size_t i = 0; i < kNestIters; ++i) scratch_.iters[i] = k.iters[i];
    if constexpr (kMt) {
      const Sidecar& side = page->side[off];
      scratch_.tid = side.tid;
      scratch_.flags = side.flags;
      scratch_.ts = side.ts;
    }
    return &scratch_;
  }

  void insert(std::uint64_t addr, const Slot& value) {
    if (value.empty()) {  // shadow semantics: an empty slot reads as absent
      remove(addr);
      return;
    }
    Page& page = touch_page(addr);
    const std::size_t off = offset(addr);
    std::uint64_t& w = page.words[off];
    NestSnapshotIntern::Key k;
    k.ctx = value.ctx;
    for (std::size_t i = 0; i < kNestIters; ++i) k.iters[i] = value.iters[i];
    // Acquire before release so an overwrite with the same snapshot never
    // bounces its refcount through zero (and out of the intern table).
    const std::uint32_t token = intern_.acquire(k);
    if (w != 0)
      intern_.release(word_token(w));
    else
      ++resident_;
    w = pack_word(value.loc, token);
    if constexpr (kMt) page.side[off] = Sidecar{value.tid, value.flags, value.ts};
  }

  void remove(std::uint64_t addr) {
    Page* page = page_at(addr);
    if (page == nullptr) return;
    std::uint64_t& w = page->words[offset(addr)];
    if (w == 0) return;
    intern_.release(word_token(w));
    w = 0;
    --resident_;
  }

  std::optional<Slot> extract(std::uint64_t addr) {
    const Slot* s = find(addr);
    if (s == nullptr) return std::nullopt;
    Slot out = *s;
    remove(addr);
    return out;
  }

  /// Advisory cache hint (batched kernel): one walk now, the packed word
  /// (and MT sidecar) line is in flight by the time the compare reaches it.
  void prefetch(std::uint64_t addr) const {
    const Page* page = page_at(addr);
    if (page == nullptr) return;
    const std::size_t off = offset(addr);
    prefetch_rw(&page->words[off]);  // 8-byte word: always one line
    if constexpr (kMt) prefetch_obj_rw(&page->side[off], sizeof(Sidecar));
  }

  /// Releases every page and directory (bytes return to MemStats::kStore);
  /// the root directory survives, zeroed, for reuse — burst-mark resets
  /// clear the store and keep profiling.
  void clear() {
    if (root_ != nullptr) {
      for (std::size_t a = 0; a < kL1Size; ++a) {
        L2* l2 = root_[a];
        if (l2 == nullptr) continue;
        free_levels(l2);
        root_[a] = nullptr;
      }
    }
    intern_.clear();
    pages_ = 0;
    resident_ = 0;
  }

  std::size_t page_count() const { return pages_; }
  std::size_t occupied() const { return resident_; }
  std::size_t bytes() const { return table_bytes_ + intern_.bytes(); }

  /// Live distinct nest snapshots (tests: interner boundedness).
  std::size_t interned_snapshots() const { return intern_.live(); }
  /// Snapshot ids ever minted (tests: free-list recycling / wrap guard).
  std::size_t snapshot_high_water() const { return intern_.high_water(); }

 private:
  struct Sidecar {
    std::uint32_t tid;
    std::uint32_t flags;
    std::uint64_t ts;
  };
  struct PageSeq {
    std::uint64_t words[kPageWords];
  };
  struct PageMt {
    std::uint64_t words[kPageWords];
    Sidecar side[kPageWords];
  };
  using Page = std::conditional_t<kMt, PageMt, PageSeq>;
  struct L3 {
    Page* pages[kL3Size];
  };
  struct L2 {
    L3* dirs[kL2Size];
  };
  static constexpr std::size_t kRootBytes = kL1Size * sizeof(L2*);
  static_assert(sizeof(PageSeq) == huge::kHugeThreshold,
                "a leaf page is exactly one transparent huge page of words");

  static std::size_t offset(std::uint64_t addr) {
    return static_cast<std::size_t>(addr & kPageMask);
  }
  static std::size_t i3(std::uint64_t addr) {
    return static_cast<std::size_t>((addr >> kPageBits) & (kL3Size - 1));
  }
  static std::size_t i2(std::uint64_t addr) {
    return static_cast<std::size_t>((addr >> (kPageBits + kL3Bits)) &
                                    (kL2Size - 1));
  }
  static std::size_t i1(std::uint64_t addr) {
    return static_cast<std::size_t>(addr >> (kPageBits + kL3Bits + kL2Bits));
  }

  void* alloc_block(std::size_t bytes) {
    void* p = huge::alloc_zeroed(bytes);
    MemStats::instance().add(MemComponent::kStore,
                             static_cast<std::int64_t>(bytes));
    table_bytes_ += bytes;
    return p;
  }

  void free_block(void* p, std::size_t bytes) {
    huge::free(p, bytes);
    MemStats::instance().add(MemComponent::kStore,
                             -static_cast<std::int64_t>(bytes));
    table_bytes_ -= bytes;
  }

  const Page* page_at(std::uint64_t addr) const {
    const L2* l2 = root_[i1(addr)];
    if (l2 == nullptr) return nullptr;
    const L3* l3 = l2->dirs[i2(addr)];
    if (l3 == nullptr) return nullptr;
    return l3->pages[i3(addr)];
  }
  Page* page_at(std::uint64_t addr) {
    return const_cast<Page*>(std::as_const(*this).page_at(addr));
  }

  Page& touch_page(std::uint64_t addr) {
    L2*& l2 = root_[i1(addr)];
    if (l2 == nullptr) l2 = static_cast<L2*>(alloc_block(sizeof(L2)));
    L3*& l3 = l2->dirs[i2(addr)];
    if (l3 == nullptr) l3 = static_cast<L3*>(alloc_block(sizeof(L3)));
    Page*& page = l3->pages[i3(addr)];
    if (page == nullptr) {
      page = static_cast<Page*>(alloc_block(sizeof(Page)));
      ++pages_;
    }
    return *page;
  }

  void free_levels(L2* l2) {
    for (std::size_t b = 0; b < kL2Size; ++b) {
      L3* l3 = l2->dirs[b];
      if (l3 == nullptr) continue;
      for (std::size_t c = 0; c < kL3Size; ++c)
        if (Page* page = l3->pages[c]) free_block(page, sizeof(Page));
      free_block(l3, sizeof(L3));
    }
    free_block(l2, sizeof(L2));
  }

  void destroy() {
    if (root_ == nullptr) return;
    clear();
    free_block(root_, kRootBytes);
    root_ = nullptr;
  }

  NestSnapshotIntern intern_;
  L2** root_ = nullptr;
  std::size_t table_bytes_ = 0;
  std::size_t pages_ = 0;
  std::size_t resident_ = 0;
  mutable Slot scratch_{};  ///< find() decode buffer (see header comment)
};

static_assert(AccessStore<PackedShadowStore<SeqSlot>>);
static_assert(AccessStore<PackedShadowStore<MtSlot>>);

}  // namespace depprof
