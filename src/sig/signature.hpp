#pragma once
// Fixed-size signature (Sec. III-B, Algorithm 1's storage).
//
// A signature encodes an approximate set of memory addresses in a bounded
// array.  Unlike a Bloom filter it uses a *single* hash function so that
// elements can be removed again (variable-lifetime analysis), and each slot
// stores the source line of the recorded access rather than one bit.
//
// Hash collisions make distinct addresses share a slot; the profiler then
// builds dependences against the wrong recorded access, which is exactly the
// false-positive/false-negative trade quantified in Table I and modelled by
// formula 2 (see fpr_model.hpp).

#include <cstdint>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/huge_alloc.hpp"
#include "common/mem_stats.hpp"
#include "common/prefetch.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

/// Slot-index function of the signature.
///
/// kModulo is the paper-faithful default: `slot = addr % m`, as in
/// transactional-memory bit-selection signatures.  Under modulo indexing a
/// collision partner is the *deterministic* address m slots away, so
/// colliding accesses usually belong to the same data structure and produce
/// identical dependence records — the reason measured FPR declines sharply
/// with m (Table I) instead of saturating.  kMix (a strong 64-bit mixer)
/// randomizes partners; the sighash ablation quantifies the difference.
enum class SigHash { kModulo, kMix };

template <typename Slot>
class Signature {
 public:
  using slot_type = Slot;

  /// Creates a signature with `slot_count` slots (>= 1).  Memory is charged
  /// against MemComponent::kSignatures for Figures 7/8 accounting.
  explicit Signature(std::size_t slot_count, SigHash hash = SigHash::kModulo)
      : hash_(hash),
        slots_(slot_count ? slot_count : 1),
        mask_((slots_.size() & (slots_.size() - 1)) == 0 ? slots_.size() - 1
                                                         : 0),
        charge_(MemComponent::kSignatures,
                static_cast<std::int64_t>(sizeof(Slot) * (slot_count ? slot_count : 1))) {}

  /// Membership check: returns the recorded slot for `addr`, or nullptr if
  /// the slot is empty.  Note that a non-empty slot may have been written by
  /// a *colliding* address — the approximation the paper accepts.
  const Slot* find(std::uint64_t addr) const {
    const Slot& s = slots_[index(addr)];
    return s.empty() ? nullptr : &s;
  }

  /// Insertion: records `value` as the latest access to `addr`, overwriting
  /// whatever the slot held.
  void insert(std::uint64_t addr, const Slot& value) {
    Slot& s = slots_[index(addr)];
    if (s.empty() && !value.empty()) ++occupied_;
    s = value;
  }

  /// Removal (variable-lifetime analysis, Sec. III-B): clears the slot for
  /// `addr`.  A colliding live address recorded in the same slot is cleared
  /// too — another accepted approximation.
  void remove(std::uint64_t addr) {
    Slot& s = slots_[index(addr)];
    if (!s.empty()) --occupied_;
    s = Slot{};
  }

  /// Removes and returns the slot state for `addr` (used when migrating an
  /// address to another worker during load balancing, Sec. IV-A).
  std::optional<Slot> extract(std::uint64_t addr) {
    Slot& s = slots_[index(addr)];
    if (s.empty()) return std::nullopt;
    Slot out = s;
    s = Slot{};
    --occupied_;
    return out;
  }

  /// Hints the slot for `addr` into cache (batched kernel, K events ahead).
  /// Write intent: nearly every probe is followed by an insert to the same
  /// slot, and a Slot regularly straddles two cache lines.
  void prefetch(std::uint64_t addr) const {
    prefetch_obj_rw(&slots_[index(addr)], sizeof(Slot));
  }

  /// Disambiguation (Sec. III-B signature operation): number of slot indices
  /// occupied in both signatures.  An address inserted into both is
  /// guaranteed to be counted.
  std::size_t intersect_count(const Signature& other) const {
    const std::size_t n = std::min(slots_.size(), other.slots_.size());
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!slots_[i].empty() && !other.slots_[i].empty()) ++count;
    return count;
  }

  void clear() {
    for (auto& s : slots_) s = Slot{};
    occupied_ = 0;
  }

  std::size_t slot_count() const { return slots_.size(); }
  std::size_t occupied() const { return occupied_; }
  double load_factor() const {
    return static_cast<double>(occupied_) / static_cast<double>(slots_.size());
  }
  std::size_t bytes() const { return slots_.size() * sizeof(Slot); }

 private:
  std::size_t index(std::uint64_t addr) const {
    const std::uint64_t h = hash_ == SigHash::kModulo ? addr : hash_address(addr);
    // h & mask_ == h % size for power-of-two sizes; the hot path calls this
    // up to five times per event (find/find/insert plus two prefetches in
    // the batched kernel), so sparing the 64-bit division matters.
    if (mask_ != 0) return static_cast<std::size_t>(h & mask_);
    return static_cast<std::size_t>(h % slots_.size());
  }

  SigHash hash_;
  /// Slot array on transparent huge pages: at profiler sizes (hundreds of
  /// MB) hashed probing misses the dTLB on every access with 4 KiB pages,
  /// and the page-walk stalls would defeat the batched kernel's prefetches.
  std::vector<Slot, HugePageAllocator<Slot>> slots_;
  std::uint64_t mask_;  ///< size - 1 when size is a power of two, else 0
  std::size_t occupied_ = 0;
  ScopedMemCharge charge_;
};

static_assert(AccessStore<Signature<SeqSlot>>);
static_assert(AccessStore<Signature<MtSlot>>);

}  // namespace depprof
