#pragma once
// Signature slot layouts.
//
// The paper stores, per slot, the source line of the most recent access so
// that the *source* end of a dependence can be reconstructed (Sec. III-B:
// "each slot of the array is three bytes long ... so that the source line
// number ... can be stored in it"; the evaluation uses 4-byte slots).
//
// Our slots additionally record the nest context of the access (the
// interned innermost dynamic loop entry plus the root-anchored iteration
// window — see trace/nest.hpp and trace/event.hpp), which is what the
// Sec. VII-A parallelism discovery needs to tell loop-carried from
// intra-iteration dependences at every nest level, and — in the MT layout
// (Sec. V) — the accessing thread id and the global timestamp used for race
// detection.
// The slot size remains a small constant, so the signature's bounded-memory
// property is unchanged; only the constant differs from the paper's 4 bytes.
//
// Address tag: a hash collision in the paper's line-only slots usually
// produces an *identical* dependence record (same array, same lines), which
// is why measured FPR stays low even at high occupancy.  Our richer slots
// would instead compare loop iterations of two different array elements and
// silently flip a loop-carried verdict.  Each slot therefore carries a
// 4-byte tag of the recorded address; the detector trusts the loop-context
// and timestamp comparisons only when the tag matches.  Membership checks
// and source-line reconstruction ignore the tag, so the approximate-set
// semantics (and Table I's FPR/FNR behaviour) are exactly the paper's.

#include <cstdint>

#include "common/hash.hpp"
#include "common/location.hpp"
#include "trace/event.hpp"

namespace depprof {

/// Tag of a recorded address, gating context comparisons (see above).
constexpr std::uint32_t addr_tag(std::uint64_t addr) {
  return static_cast<std::uint32_t>(hash_address(addr) >> 32);
}

/// Slot contents for sequential-target profiling.
struct SeqSlot {
  std::uint32_t loc = 0;  ///< packed SourceLocation of the last access; 0 = empty
  std::uint32_t tag = 0;  ///< addr_tag of the recorded address
  std::uint32_t ctx = 0;  ///< innermost dynamic loop entry (NestForest id)
  std::uint32_t iters[kNestIters] = {};  ///< root-anchored iteration window

  bool empty() const { return loc == 0; }
  SourceLocation location() const { return SourceLocation::from_packed(loc); }
};

/// Slot contents for multi-threaded-target profiling (Sec. V).
struct MtSlot {
  std::uint32_t loc = 0;  ///< packed SourceLocation of the last access; 0 = empty
  std::uint32_t tag = 0;  ///< addr_tag of the recorded address
  std::uint32_t ctx = 0;  ///< innermost dynamic loop entry (NestForest id)
  std::uint32_t iters[kNestIters] = {};  ///< root-anchored iteration window
  std::uint32_t tid = 0;  ///< target-program thread id of the last access
  /// AccessFlags of the last access (kInLockRegion feeds the Sec. V-B lock
  /// suppression).  Fills the alignment hole before `ts`, so the MT slot
  /// stays at 56 bytes.
  std::uint32_t flags = 0;
  std::uint64_t ts = 0;  ///< global timestamp of the last access (race check)

  bool empty() const { return loc == 0; }
  SourceLocation location() const { return SourceLocation::from_packed(loc); }
};

static_assert(sizeof(SeqSlot) == 40);
static_assert(sizeof(MtSlot) == 56);

}  // namespace depprof
