#pragma once
// Analytical false-positive model (Sec. VI-A, formula 2).
//
//   P_fp = 1 - (1 - 1/m)^n
//
// the probability that a given slot is occupied after inserting n distinct
// addresses into a signature with m slots under a uniform hash.  The paper
// uses it both to explain why c-ray/rgbyuv/rotate/rot-cc/bodytrack have
// higher error rates (large n) and to size signatures a priori.

#include <cstddef>

namespace depprof {

/// Formula 2: predicted probability that a membership check hits an
/// occupied slot written by a *different* address.
double predicted_fpr(std::size_t slots, std::size_t distinct_addresses);

/// Inverse sizing helper: the minimum slot count m such that
/// predicted_fpr(m, n) <= target.  This is the paper's "signature size can
/// also be estimated using formula 2" use case.
std::size_t slots_for_target_fpr(std::size_t distinct_addresses, double target_fpr);

}  // namespace depprof
