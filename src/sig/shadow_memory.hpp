#pragma once
// Shadow-memory baseline (Sec. III-B).
//
// "Traditional data-dependence profiling approaches record memory accesses
// using shadow memory ... the access history of addresses is stored in a
// table where the index of an address is the address itself."  We implement
// the multilevel-table variant the paper mentions: a two-level page table
// whose second-level pages are allocated on first touch.  Sparse, widely
// spread address sets blow its memory up — the effect the ablation_storage
// bench quantifies against signatures.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/mem_stats.hpp"
#include "common/prefetch.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

template <typename Slot>
class ShadowMemory {
 public:
  using slot_type = Slot;

  /// One second-level page covers 2^kPageBits word-granular addresses.
  static constexpr unsigned kPageBits = 16;
  static constexpr std::size_t kPageSlots = std::size_t{1} << kPageBits;

  ShadowMemory() = default;

  /// A/B toggle for the walk assist below (bench/ablation_storage measures
  /// the delta).  Process-wide and read-only on the hot path; defaults on.
  static void set_walk_assist(bool on) { walk_assist_flag() = on; }
  static bool walk_assist() { return walk_assist_flag(); }

  const Slot* find(std::uint64_t addr) const {
    const Page* page = find_page(addr);
    if (page == nullptr) return nullptr;
    const std::size_t off = offset(addr);
    // Issue the slot's lines the moment the walk resolves, before the
    // empty()/caller loads reach them: a 40/56-byte slot regularly straddles
    // two lines and the second line's miss is otherwise exposed on the
    // caller's compare (and on the insert that usually follows).
    if (walk_assist()) prefetch_obj_rw(&page->slots[off], sizeof(Slot));
    const Slot& s = page->slots[off];
    return s.empty() ? nullptr : &s;
  }

  void insert(std::uint64_t addr, const Slot& value) {
    Page& page = touch_page(addr);
    Slot& s = page.slots[offset(addr)];
    if (s.empty() && !value.empty()) ++resident_;
    s = value;
  }

  void remove(std::uint64_t addr) {
    Page* page = find_page_mut(addr);
    if (page == nullptr) return;
    Slot& s = page->slots[offset(addr)];
    if (!s.empty()) --resident_;
    s = Slot{};
  }

  std::optional<Slot> extract(std::uint64_t addr) {
    Page* page = find_page_mut(addr);
    if (page == nullptr) return std::nullopt;
    Slot& s = page->slots[offset(addr)];
    if (s.empty()) return std::nullopt;
    Slot out = s;
    s = Slot{};
    --resident_;
    return out;
  }

  /// Advisory cache hint (batched kernel): the page lookup runs now, the
  /// slot line lands in cache by the time the compare/update reaches it.
  void prefetch(std::uint64_t addr) const {
    if (const Page* page = find_page(addr))
      prefetch_obj_rw(&page->slots[offset(addr)], sizeof(Slot));
  }

  void clear() {
    pages_.clear();
    resident_ = 0;
    last_page_id_ = kNoPage;
    last_page_ = nullptr;
  }

  std::size_t page_count() const { return pages_.size(); }
  std::size_t occupied() const { return resident_; }
  std::size_t bytes() const { return pages_.size() * sizeof(Page); }

 private:
  struct Page {
    std::array<Slot, kPageSlots> slots{};
    ScopedMemCharge charge{MemComponent::kSignatures,
                           static_cast<std::int64_t>(sizeof(slots))};
  };

  // Addresses arrive as canonical word units (see common/hash.hpp).
  static std::uint64_t page_id(std::uint64_t addr) { return addr >> kPageBits; }
  static std::size_t offset(std::uint64_t addr) {
    return static_cast<std::size_t>(addr & (kPageSlots - 1));
  }

  // The two-level walk's fast path: consecutive accesses overwhelmingly hit
  // the same second-level page (a page covers 64K words), so a one-entry
  // page cache short-circuits the unordered_map probe — the pointer chase
  // that dominates the walk.  Pages are never freed individually (remove()
  // only empties slots), so the cached pointer stays valid until clear().
  const Page* find_page(std::uint64_t addr) const {
    const std::uint64_t id = page_id(addr);
    if (walk_assist() && id == last_page_id_) return last_page_;
    auto it = pages_.find(id);
    if (it == pages_.end()) return nullptr;
    last_page_id_ = id;
    last_page_ = it->second.get();
    return last_page_;
  }
  Page* find_page_mut(std::uint64_t addr) {
    return const_cast<Page*>(find_page(addr));
  }
  Page& touch_page(std::uint64_t addr) {
    const std::uint64_t id = page_id(addr);
    if (walk_assist() && id == last_page_id_)
      return *const_cast<Page*>(last_page_);
    auto& p = pages_[id];
    if (!p) p = std::make_unique<Page>();
    last_page_id_ = id;
    last_page_ = p.get();
    return *p;
  }

  static bool& walk_assist_flag() {
    static bool on = true;
    return on;
  }

  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::size_t resident_ = 0;
  mutable std::uint64_t last_page_id_ = kNoPage;
  mutable const Page* last_page_ = nullptr;
};

static_assert(AccessStore<ShadowMemory<SeqSlot>>);
static_assert(AccessStore<ShadowMemory<MtSlot>>);

}  // namespace depprof
