#pragma once
// Shadow-memory baseline (Sec. III-B).
//
// "Traditional data-dependence profiling approaches record memory accesses
// using shadow memory ... the access history of addresses is stored in a
// table where the index of an address is the address itself."  We implement
// the multilevel-table variant the paper mentions: a two-level page table
// whose second-level pages are allocated on first touch.  Sparse, widely
// spread address sets blow its memory up — the effect the ablation_storage
// bench quantifies against signatures.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/mem_stats.hpp"
#include "common/prefetch.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

template <typename Slot>
class ShadowMemory {
 public:
  using slot_type = Slot;

  /// One second-level page covers 2^kPageBits word-granular addresses.
  static constexpr unsigned kPageBits = 16;
  static constexpr std::size_t kPageSlots = std::size_t{1} << kPageBits;

  ShadowMemory() = default;

  const Slot* find(std::uint64_t addr) const {
    const Page* page = find_page(addr);
    if (page == nullptr) return nullptr;
    const Slot& s = page->slots[offset(addr)];
    return s.empty() ? nullptr : &s;
  }

  void insert(std::uint64_t addr, const Slot& value) {
    Page& page = touch_page(addr);
    Slot& s = page.slots[offset(addr)];
    if (s.empty() && !value.empty()) ++resident_;
    s = value;
  }

  void remove(std::uint64_t addr) {
    Page* page = find_page_mut(addr);
    if (page == nullptr) return;
    Slot& s = page->slots[offset(addr)];
    if (!s.empty()) --resident_;
    s = Slot{};
  }

  std::optional<Slot> extract(std::uint64_t addr) {
    Page* page = find_page_mut(addr);
    if (page == nullptr) return std::nullopt;
    Slot& s = page->slots[offset(addr)];
    if (s.empty()) return std::nullopt;
    Slot out = s;
    s = Slot{};
    --resident_;
    return out;
  }

  /// Advisory cache hint (batched kernel): the page lookup runs now, the
  /// slot line lands in cache by the time the compare/update reaches it.
  void prefetch(std::uint64_t addr) const {
    if (const Page* page = find_page(addr))
      prefetch_obj_rw(&page->slots[offset(addr)], sizeof(Slot));
  }

  void clear() {
    pages_.clear();
    resident_ = 0;
  }

  std::size_t page_count() const { return pages_.size(); }
  std::size_t occupied() const { return resident_; }
  std::size_t bytes() const { return pages_.size() * sizeof(Page); }

 private:
  struct Page {
    std::array<Slot, kPageSlots> slots{};
    ScopedMemCharge charge{MemComponent::kSignatures,
                           static_cast<std::int64_t>(sizeof(slots))};
  };

  // Addresses arrive as canonical word units (see common/hash.hpp).
  static std::uint64_t page_id(std::uint64_t addr) { return addr >> kPageBits; }
  static std::size_t offset(std::uint64_t addr) {
    return static_cast<std::size_t>(addr & (kPageSlots - 1));
  }

  const Page* find_page(std::uint64_t addr) const {
    auto it = pages_.find(page_id(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }
  Page* find_page_mut(std::uint64_t addr) {
    auto it = pages_.find(page_id(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }
  Page& touch_page(std::uint64_t addr) {
    auto& p = pages_[page_id(addr)];
    if (!p) p = std::make_unique<Page>();
    return *p;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::size_t resident_ = 0;
};

static_assert(AccessStore<ShadowMemory<SeqSlot>>);
static_assert(AccessStore<ShadowMemory<MtSlot>>);

}  // namespace depprof
