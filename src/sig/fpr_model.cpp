#include "sig/fpr_model.hpp"

#include <cmath>

namespace depprof {

double predicted_fpr(std::size_t slots, std::size_t distinct_addresses) {
  if (slots == 0) return 1.0;
  const double m = static_cast<double>(slots);
  const double n = static_cast<double>(distinct_addresses);
  // 1 - (1 - 1/m)^n, computed in log space for numerical stability at
  // large m.
  return -std::expm1(n * std::log1p(-1.0 / m));
}

std::size_t slots_for_target_fpr(std::size_t distinct_addresses, double target_fpr) {
  if (distinct_addresses == 0) return 1;
  if (target_fpr <= 0.0) return static_cast<std::size_t>(-1);
  if (target_fpr >= 1.0) return 1;
  // Solve 1 - (1 - 1/m)^n = p  =>  m = 1 / (1 - (1-p)^(1/n)).
  const double n = static_cast<double>(distinct_addresses);
  const double base = std::exp(std::log1p(-target_fpr) / n);
  const double m = 1.0 / (1.0 - base);
  return static_cast<std::size_t>(std::ceil(m));
}

}  // namespace depprof
