#pragma once
// Perfect signature (Sec. VI-A).
//
// "We implemented a 'perfect signature', in which hash collisions are
// guaranteed not to happen.  Essentially, the perfect signature is a table
// where each memory address has its own entry."  It is the accuracy baseline
// for Table I (FPR/FNR) and the "DP" column of Table II, and doubles as the
// "naive" memory configuration of Figures 7/8.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/mem_stats.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

template <typename Slot>
class PerfectSignature {
 public:
  using slot_type = Slot;

  PerfectSignature() = default;

  /// Exact membership check: nullptr unless `addr` itself was inserted.
  const Slot* find(std::uint64_t addr) const {
    auto it = map_.find(addr);
    return it == map_.end() ? nullptr : &it->second;
  }

  void insert(std::uint64_t addr, const Slot& value) {
    auto [it, inserted] = map_.insert_or_assign(addr, value);
    (void)it;
    if (inserted) {
      MemStats::instance().add(MemComponent::kSignatures,
                               static_cast<std::int64_t>(kEntryBytes));
    }
  }

  void remove(std::uint64_t addr) {
    if (map_.erase(addr) > 0) {
      MemStats::instance().add(MemComponent::kSignatures,
                               -static_cast<std::int64_t>(kEntryBytes));
    }
  }

  std::optional<Slot> extract(std::uint64_t addr) {
    auto it = map_.find(addr);
    if (it == map_.end()) return std::nullopt;
    Slot out = it->second;
    map_.erase(it);
    MemStats::instance().add(MemComponent::kSignatures,
                             -static_cast<std::int64_t>(kEntryBytes));
    return out;
  }

  /// Advisory cache hint (batched kernel).  The node-based map hides its
  /// bucket layout, so there is no slot address to prefetch without paying
  /// the full lookup — the hint degrades to a no-op here; the hotpath bench
  /// measures the batched kernel per backend for exactly this reason.
  void prefetch(std::uint64_t addr) const { (void)addr; }

  void clear() {
    MemStats::instance().add(
        MemComponent::kSignatures,
        -static_cast<std::int64_t>(kEntryBytes * map_.size()));
    map_.clear();
  }

  std::size_t occupied() const { return map_.size(); }
  std::size_t bytes() const { return map_.size() * kEntryBytes; }

  ~PerfectSignature() { clear(); }
  PerfectSignature(const PerfectSignature&) = delete;
  PerfectSignature& operator=(const PerfectSignature&) = delete;
  PerfectSignature(PerfectSignature&&) = default;
  PerfectSignature& operator=(PerfectSignature&&) = default;

 private:
  // Approximate per-entry footprint of the hash map (key + slot + bucket
  // overhead), used for the Figures 7/8 "naive" accounting.
  static constexpr std::size_t kEntryBytes = sizeof(std::uint64_t) + sizeof(Slot) + 16;
  std::unordered_map<std::uint64_t, Slot> map_;
};

static_assert(AccessStore<PerfectSignature<SeqSlot>>);
static_assert(AccessStore<PerfectSignature<MtSlot>>);

}  // namespace depprof
