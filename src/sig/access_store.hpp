#pragma once
// The compile-time contract every access-store backend satisfies.
//
// Algorithm 1 is generic over *how* the last read/write per address is
// recorded: the paper's fixed-size Signature, the collision-free
// PerfectSignature (Sec. VI-A), the multi-level ShadowMemory baseline and
// the chained HashTableRecorder baseline (Sec. III-B).  DetectorCore<Store>
// is instantiated once per backend against this concept, so the per-access
// detect loop contains no runtime dispatch on the storage kind — backend
// choice is resolved exactly once, when the profiler is constructed.
//
// Required operations (the probe/insert/remove/footprint surface):
//   slot_type            — recorded slot layout (SeqSlot or MtSlot)
//   find(addr)           — membership probe; recorded slot or nullptr
//   insert(addr, slot)   — record the latest access
//   remove(addr)         — variable-lifetime removal (Sec. III-B)
//   extract(addr)        — remove-and-return for worker migration (Sec. IV-A)
//   prefetch(addr)       — hint the slot for `addr` into cache (batched kernel);
//                          advisory only, never observable in results
//   clear()              — drop all recorded state
//   occupied()           — live entries (statistics)
//   bytes()              — memory footprint (Figures 7/8 accounting)
//
// Each backend header ends with static_asserts of this concept for both
// slot layouts, so a drifting backend fails at its own definition site.

#include <concepts>
#include <cstdint>
#include <optional>

namespace depprof {

template <typename S>
concept AccessStore = requires(S store, const S const_store, std::uint64_t addr,
                               const typename S::slot_type& slot) {
  typename S::slot_type;
  { const_store.find(addr) } -> std::same_as<const typename S::slot_type*>;
  { store.insert(addr, slot) } -> std::same_as<void>;
  { store.remove(addr) } -> std::same_as<void>;
  { store.extract(addr) } -> std::same_as<std::optional<typename S::slot_type>>;
  { const_store.prefetch(addr) } -> std::same_as<void>;
  { store.clear() } -> std::same_as<void>;
  { const_store.occupied() } -> std::convertible_to<std::size_t>;
  { const_store.bytes() } -> std::convertible_to<std::size_t>;
};

}  // namespace depprof
