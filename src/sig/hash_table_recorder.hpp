#pragma once
// Hash-table baseline (Sec. III-B).
//
// "An alternative is to record memory accesses using a hash table, but this
// approach incurs additional time overhead since when more than one address
// is hashed into the same bucket, the bucket has to be searched for the
// address in question.  Based on our experiments, the hash table approach is
// about 1.5 - 3.7x slower than our approach."
//
// This is a deliberately faithful open-hashing table with chained buckets so
// the ablation_storage bench can reproduce that comparison: exact (no false
// dependences) but paying a key compare + chain walk per access and node
// allocations as it grows.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_stats.hpp"
#include "common/prefetch.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"

namespace depprof {

template <typename Slot>
class HashTableRecorder {
 public:
  using slot_type = Slot;

  explicit HashTableRecorder(std::size_t bucket_count = 1 << 16)
      : buckets_(bucket_count ? bucket_count : 1),
        charge_(MemComponent::kSignatures,
                static_cast<std::int64_t>(sizeof(Node*) * (bucket_count ? bucket_count : 1))) {}

  const Slot* find(std::uint64_t addr) const {
    for (const Node* n = buckets_[index(addr)].get(); n != nullptr; n = n->next.get())
      if (n->addr == addr) return &n->slot;
    return nullptr;
  }

  void insert(std::uint64_t addr, const Slot& value) {
    auto& head = buckets_[index(addr)];
    for (Node* n = head.get(); n != nullptr; n = n->next.get()) {
      if (n->addr == addr) {
        n->slot = value;
        return;
      }
    }
    auto node = std::make_unique<Node>();
    node->addr = addr;
    node->slot = value;
    node->next = std::move(head);
    head = std::move(node);
    ++size_;
    MemStats::instance().add(MemComponent::kSignatures,
                             static_cast<std::int64_t>(sizeof(Node)));
  }

  void remove(std::uint64_t addr) { (void)extract(addr); }

  /// Advisory cache hint (batched kernel): pulls the first chain node; the
  /// chain walk beyond it still pays its misses — part of why this baseline
  /// trails the signature (Sec. III-B).
  void prefetch(std::uint64_t addr) const {
    if (const Node* n = buckets_[index(addr)].get()) prefetch_ro(n);
  }

  std::optional<Slot> extract(std::uint64_t addr) {
    std::unique_ptr<Node>* link = &buckets_[index(addr)];
    while (*link) {
      if ((*link)->addr == addr) {
        Slot out = (*link)->slot;
        *link = std::move((*link)->next);
        --size_;
        MemStats::instance().add(MemComponent::kSignatures,
                                 -static_cast<std::int64_t>(sizeof(Node)));
        return out;
      }
      link = &(*link)->next;
    }
    return std::nullopt;
  }

  void clear() {
    for (auto& b : buckets_) b.reset();
    MemStats::instance().add(MemComponent::kSignatures,
                             -static_cast<std::int64_t>(sizeof(Node) * size_));
    size_ = 0;
  }

  std::size_t occupied() const { return size_; }
  std::size_t bytes() const {
    return buckets_.size() * sizeof(Node*) + size_ * sizeof(Node);
  }

  ~HashTableRecorder() { clear(); }
  HashTableRecorder(const HashTableRecorder&) = delete;
  HashTableRecorder& operator=(const HashTableRecorder&) = delete;
  HashTableRecorder(HashTableRecorder&& o) noexcept
      : buckets_(std::move(o.buckets_)),
        size_(o.size_),
        charge_(std::move(o.charge_)) {
    o.buckets_.clear();
    o.size_ = 0;
  }
  HashTableRecorder& operator=(HashTableRecorder&&) = delete;

 private:
  struct Node {
    std::uint64_t addr = 0;
    Slot slot{};
    std::unique_ptr<Node> next;
  };

  std::size_t index(std::uint64_t addr) const {
    return static_cast<std::size_t>(hash_address(addr) % buckets_.size());
  }

  std::vector<std::unique_ptr<Node>> buckets_;
  std::size_t size_ = 0;
  ScopedMemCharge charge_;
};

static_assert(AccessStore<HashTableRecorder<SeqSlot>>);
static_assert(AccessStore<HashTableRecorder<MtSlot>>);

}  // namespace depprof
