#pragma once
// Deterministic schedule exploration for the parallel pipeline (ISSUE 7).
//
// Every cross-thread hand-off in the pipeline — chunk acquire/publish/
// recycle, queue push/pop, the migration mailbox, the blocking-wait poll
// loops — calls sched::point(site).  With no controller installed the call
// is one relaxed atomic load; under an active session (begin()/end(), or
// DEPPROF_SCHED=1 in the environment) the attached threads are serialized:
// exactly one attached thread runs between consecutive points, and a seeded
// controller chooses which one proceeds at each step.  The sequence of
// choices — the schedule — is recorded as a compact trace and can be
// replayed, which turns any failing interleaving into a committed,
// byte-stable repro instead of a wall-clock lottery ticket.
//
// Two exploration algorithms:
//   kRandomWalk — uniform choice over the runnable threads at each step;
//   kPct        — PCT-style: fixed random priorities, highest-priority
//                 runnable thread wins, with a few seeded priority-change
//                 points per run (plus a starvation rotation so a thread
//                 polling an empty queue cannot monopolize the schedule).
//
// The controller is cooperative and self-protecting: threads that never
// attach are unaffected, a thread that detaches (or exits) leaves the
// schedule, and a stall (replay divergence, a granted thread blocked
// outside any point) degrades to free running after a timeout instead of
// deadlocking — divergences are counted and reported, never hung on.
//
// The same header carries the pipeline's ownership/epoch invariant
// counters: chunk hand-off violations (wrong owner, double pop, stale
// recycle) call note_violation(), and the oracle harness fails any case
// whose run bumped the counter — the state-swap class of bug fires as an
// immediate, attributed assertion instead of a silently wrong map.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace depprof::sched {

/// Schedule-exploration algorithm.
enum class Algo {
  kRandomWalk,  ///< uniform choice among runnable threads
  kPct,         ///< priority-based with seeded change points
};

const char* algo_name(Algo a);
bool parse_algo(const char* name, Algo& out);

/// One scheduling decision: which thread was granted, at which site.
/// Replay follows the thread names; the sites double as divergence checks.
struct ScheduleStep {
  std::string thread;
  std::string site;
};

/// A recorded schedule — the compact repro format for interleavings.
struct ScheduleTrace {
  std::vector<ScheduleStep> steps;
  bool empty() const { return steps.empty(); }

  /// Line-oriented text round-trip ("<thread> <site>" per line).
  std::string format() const;
  static bool parse(ScheduleTrace& out, const std::string& text,
                    std::string* error = nullptr);
};

struct Options {
  std::uint64_t seed = 1;
  Algo algo = Algo::kRandomWalk;
  /// Grants before the controller falls back to free running (runaway cap).
  std::uint64_t max_steps = 1u << 20;
  /// Non-empty: follow this schedule instead of exploring; after the last
  /// recorded step (or on divergence) the run continues unscheduled.
  ScheduleTrace replay;
};

/// What a session did.
struct Result {
  ScheduleTrace recorded;
  std::uint64_t steps = 0;
  /// Replay mismatches (missing thread, site drift) + stall fallbacks.
  std::uint64_t divergences = 0;
  bool free_ran = false;  ///< hit max_steps or a stall fallback
};

/// Installs a controller.  Only one session at a time; begin() from the
/// thread that will end() it.  The calling thread is NOT auto-attached.
void begin(const Options& opts);

/// Uninstalls the controller and returns what it recorded.  Any still-
/// attached threads fall back to free running.
Result end();

bool active();

/// Attaches the calling thread under `name` ("main", "w0".."wN" — stable
/// names are what make recorded schedules byte-stable).  No-op when no
/// session is active.  Threads attach once; re-attaching under a new name
/// re-registers.
void attach(const char* name);

/// Detaches the calling thread (thread exit, or leaving the scheduled
/// region).  Safe when not attached.
void detach();

/// RAII attach/detach for worker threads.
struct ThreadGuard {
  explicit ThreadGuard(const char* name) { attach(name); }
  ~ThreadGuard() { detach(); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
};

/// Temporarily leaves the schedule across a genuinely-blocking region the
/// controller cannot see through (e.g. pthread_join of the workers).
struct DetachScope {
  DetachScope();
  ~DetachScope();
  DetachScope(const DetachScope&) = delete;
  DetachScope& operator=(const DetachScope&) = delete;

 private:
  bool was_attached_ = false;
  std::string name_;
};

/// The controller refuses to schedule until this many threads have
/// attached, so the first grants do not depend on thread-spawn timing.
/// Latched: once met, threads may leave without stalling the schedule.
void expect_threads(std::size_t n);

namespace detail {
extern std::atomic<int> g_active;
void point_slow(const char* site);
}  // namespace detail

/// A schedule point: under an active session the calling thread (if
/// attached) yields here until the controller grants it the next step.
/// One relaxed load when no session is installed.
inline void point(const char* site) {
  if (detail::g_active.load(std::memory_order_relaxed) != 0)
    detail::point_slow(site);
}

// --- ownership/epoch invariant counters ---------------------------------

/// Records one hand-off invariant violation (always-on, session or not).
/// Prints the first few to stderr and bumps the global counter the oracle
/// harness checks after every case.
void note_violation(const char* site, const char* detail);

std::uint64_t violation_count();
void reset_violations();

}  // namespace depprof::sched
