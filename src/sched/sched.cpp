#include "sched/sched.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/rng.hpp"

namespace depprof::sched {
namespace {

using Clock = std::chrono::steady_clock;

/// How long a thread waits at a point before re-checking for a grant.
constexpr std::chrono::milliseconds kPollSlice{2};
/// All runnable threads parked with no grant for this long => stall
/// fallback (counts as a divergence, never a deadlock).
constexpr std::chrono::seconds kStallTimeout{5};
/// PCT starvation rotation: after this many consecutive grants to the same
/// (thread, site) — a poll loop spinning on an empty queue — its priority
/// rotates to the bottom so lower-priority threads can make progress.
constexpr std::uint64_t kPctStarvationRuns = 8;

struct ThreadState {
  std::string name;
  bool at_point = false;
  bool granted = false;
  const char* site = "";
  std::uint64_t priority = 0;  // PCT: higher wins
};

/// The per-session controller.  One mutex guards everything: schedule
/// points are chunk-granular (not per event), so this is nowhere near the
/// hot path, and a single lock keeps grant decisions linearizable.
class Controller {
 public:
  explicit Controller(const Options& opts) : opts_(opts), rng_(opts.seed) {
    // Reserve the whole recording up front: the controller lives in the
    // target's process, so a vector that doubles mid-run would perturb the
    // very heap layouts the harness exists to explore (the same bug class
    // as the unsealed chunk pool).  Site/thread names fit SSO, so after
    // this reserve a recorded step never touches the allocator.
    result_.recorded.steps.reserve(opts_.max_steps);
    if (opts_.algo == Algo::kPct) {
      // Seeded change points: a few steps at which a random thread's
      // priority drops to the bottom (the "d-1 change points" of PCT).
      const std::uint64_t horizon = std::max<std::uint64_t>(
          64, opts_.replay.empty() ? 4096 : opts_.replay.steps.size());
      for (int i = 0; i < 3; ++i)
        change_points_.push_back(rng_.below(horizon));
      std::sort(change_points_.begin(), change_points_.end());
    }
  }

  void attach(const std::string& name) {
    std::lock_guard lock(mu_);
    ThreadState& st = threads_[std::this_thread::get_id()];
    st.name = name;
    st.at_point = false;
    st.granted = false;
    st.priority = next_priority_++;
    cv_.notify_all();
  }

  /// Returns the detached thread's name ("" when it was not attached).
  std::string detach() {
    std::unique_lock lock(mu_);
    const auto it = threads_.find(std::this_thread::get_id());
    if (it == threads_.end()) return "";
    std::string name = it->second.name;
    threads_.erase(it);
    // The departed thread may have been the granted one, or the last
    // straggler the barrier was waiting on.
    maybe_grant();
    cv_.notify_all();
    return name;
  }

  void point(const char* site) {
    std::unique_lock lock(mu_);
    if (free_run_) return;
    const auto it = threads_.find(std::this_thread::get_id());
    if (it == threads_.end()) return;  // unattached threads run free
    ThreadState& me = it->second;
    me.at_point = true;
    me.site = site;
    maybe_grant();
    cv_.notify_all();
    auto parked_since = Clock::now();
    while (!me.granted && !free_run_) {
      if (cv_.wait_for(lock, kPollSlice) == std::cv_status::timeout) {
        maybe_grant();
        // Stall fallback: every attached thread is parked at a point, the
        // barrier is met, and still nobody holds the grant — a replay that
        // diverged past repair or a controller bug.  Degrade to free
        // running rather than hang the run.
        if (!me.granted && !free_run_ && barrier_met_ && all_at_point() &&
            Clock::now() - parked_since > kStallTimeout) {
          ++result_.divergences;
          enter_free_run();
        }
      }
    }
    if (me.granted) {
      me.granted = false;
      me.at_point = false;
    }
  }

  void expect_threads(std::size_t n) {
    std::lock_guard lock(mu_);
    expected_ = n;
    barrier_met_ = threads_.size() >= expected_;
  }

  Result finish() {
    std::lock_guard lock(mu_);
    enter_free_run();
    result_.free_ran = free_ran_note_;
    return std::move(result_);
  }

 private:
  bool all_at_point() const {
    for (const auto& [id, st] : threads_)
      if (!st.at_point) return false;
    return !threads_.empty();
  }

  bool anyone_granted() const {
    for (const auto& [id, st] : threads_)
      if (st.granted) return true;
    return false;
  }

  void enter_free_run() {
    if (free_run_) return;
    free_run_ = true;
    cv_.notify_all();
  }

  /// Grants the next step when the system is quiescent: every attached
  /// thread is parked at a point (so the previous grantee has re-arrived)
  /// and the registration barrier is met.  Caller holds mu_.
  void maybe_grant() {
    if (free_run_ || anyone_granted()) return;
    if (!barrier_met_) {
      barrier_met_ = expected_ == 0 || threads_.size() >= expected_;
      if (!barrier_met_) return;
      // The census is complete: replace the attach-order priorities (attach
      // order is a race between spawning threads) with a seeded shuffle over
      // the name-sorted census, so PCT's initial priority band is a pure
      // function of (names, seed) and identical seeds explore identical
      // schedules.
      std::vector<ThreadState*> census;
      census.reserve(threads_.size());
      for (auto& [id, st] : threads_) census.push_back(&st);
      std::sort(census.begin(), census.end(),
                [](const ThreadState* a, const ThreadState* b) {
                  return a->name < b->name;
                });
      for (std::size_t i = census.size(); i > 1; --i)
        std::swap(census[i - 1], census[rng_.below(i)]);
      for (std::size_t i = 0; i < census.size(); ++i)
        census[i]->priority = i;
    }
    if (!all_at_point()) return;
    if (result_.steps >= opts_.max_steps) {
      free_ran_note_ = true;
      enter_free_run();
      return;
    }

    // Runnable set in name order: grant decisions must depend only on the
    // schedule so far, never on attach timing or map iteration order.
    std::vector<ThreadState*> ready;
    ready.reserve(threads_.size());
    for (auto& [id, st] : threads_) ready.push_back(&st);
    std::sort(ready.begin(), ready.end(),
              [](const ThreadState* a, const ThreadState* b) {
                return a->name < b->name;
              });

    // Poll demotion: a thread spinning at the idle-wait site only becomes
    // grantable when every ready thread is idle-waiting.  An idle worker
    // re-arrives at wait.poll forever without making progress, so granting
    // it while productive work is pending burns the schedule budget on
    // no-op poll iterations — without this, one empty-queue worker fills
    // the entire recording with wait.poll steps and the controller hits
    // max_steps and silently degrades to free-run.
    std::vector<ThreadState*> active;
    active.reserve(ready.size());
    for (ThreadState* st : ready)
      if (std::string_view(st->site) != "wait.poll") active.push_back(st);
    if (active.empty()) active = ready;

    ThreadState* pick = nullptr;
    if (replay_pos_ < opts_.replay.steps.size()) {
      const ScheduleStep& step = opts_.replay.steps[replay_pos_++];
      for (ThreadState* st : ready)
        if (st->name == step.thread) pick = st;
      if (pick == nullptr) {
        ++result_.divergences;
        pick = algo_pick(active);
      } else if (step.site != pick->site) {
        ++result_.divergences;  // granted anyway: names drive replay
      }
    } else if (!opts_.replay.empty()) {
      // Recorded schedule exhausted: the interesting prefix has been
      // replayed; let the rest of the run drain at full speed.
      enter_free_run();
      return;
    } else {
      pick = algo_pick(active);
    }

    pick->granted = true;
    result_.recorded.steps.push_back({pick->name, pick->site});
    ++result_.steps;
    cv_.notify_all();
  }

  ThreadState* algo_pick(std::vector<ThreadState*>& ready) {
    if (opts_.algo == Algo::kRandomWalk)
      return ready[rng_.below(ready.size())];

    // PCT: priority change points first, then highest priority wins.
    while (!change_points_.empty() && result_.steps >= change_points_.front()) {
      change_points_.erase(change_points_.begin());
      ThreadState* victim = ready[rng_.below(ready.size())];
      victim->priority = lowest_priority();
    }
    ThreadState* pick = ready.front();
    for (ThreadState* st : ready)
      if (st->priority > pick->priority) pick = st;
    // Starvation rotation: PCT assumes a scheduled thread makes progress,
    // but a pipeline thread polling an empty queue just re-arrives at the
    // same site.  After a run of identical grants, rotate it to the bottom.
    if (pick->name == last_grant_name_ && pick->site == last_grant_site_) {
      if (++same_grant_run_ >= kPctStarvationRuns) {
        pick->priority = lowest_priority();
        same_grant_run_ = 0;
        ThreadState* next = ready.front();
        for (ThreadState* st : ready)
          if (st->priority > next->priority) next = st;
        pick = next;
      }
    } else {
      same_grant_run_ = 0;
    }
    last_grant_name_ = pick->name;
    last_grant_site_ = pick->site;
    return pick;
  }

  std::uint64_t lowest_priority() {
    std::uint64_t lo = ~std::uint64_t{0};
    for (const auto& [id, st] : threads_) lo = std::min(lo, st.priority);
    return lo == 0 ? 0 : lo - 1;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::thread::id, ThreadState> threads_;
  Options opts_;
  Rng rng_;
  Result result_;
  bool free_run_ = false;
  bool free_ran_note_ = false;
  bool barrier_met_ = true;
  std::size_t expected_ = 0;
  std::size_t replay_pos_ = 0;
  std::uint64_t next_priority_ = 1;
  std::vector<std::uint64_t> change_points_;
  std::string last_grant_name_;
  std::string last_grant_site_;
  std::uint64_t same_grant_run_ = 0;
};

/// Session slot.  g_active gates the fast path; the pointer itself is only
/// touched under g_session_mu (begin/end are not hot).  Shared ownership:
/// a straggler inside point_slow pins the controller alive across end().
std::mutex g_session_mu;
std::shared_ptr<Controller> g_session;

std::shared_ptr<Controller> session() {
  std::lock_guard lock(g_session_mu);
  return g_session;
}

// First-violations print cap so a systematically broken run does not drown
// the log; the counter keeps the full tally.
std::atomic<std::uint64_t> g_violations{0};
constexpr std::uint64_t kPrintCap = 16;

}  // namespace

namespace detail {
std::atomic<int> g_active{0};

void point_slow(const char* site) {
  if (auto c = session()) c->point(site);
}
}  // namespace detail

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kRandomWalk: return "random";
    case Algo::kPct: return "pct";
  }
  return "?";
}

bool parse_algo(const char* name, Algo& out) {
  const std::string_view v = name;
  if (v == "random") out = Algo::kRandomWalk;
  else if (v == "pct") out = Algo::kPct;
  else return false;
  return true;
}

std::string ScheduleTrace::format() const {
  std::ostringstream os;
  for (const ScheduleStep& s : steps) os << s.thread << ' ' << s.site << '\n';
  return os.str();
}

bool ScheduleTrace::parse(ScheduleTrace& out, const std::string& text,
                          std::string* error) {
  ScheduleTrace trace;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      if (error != nullptr)
        *error = "schedule line " + std::to_string(line_no) +
                 ": expected '<thread> <site>'";
      return false;
    }
    trace.steps.push_back({line.substr(0, sp), line.substr(sp + 1)});
  }
  out = std::move(trace);
  return true;
}

void begin(const Options& opts) {
  std::lock_guard lock(g_session_mu);
  if (g_session != nullptr) {
    std::fprintf(stderr, "sched: begin() with a session already active\n");
    return;
  }
  g_session = std::make_shared<Controller>(opts);
  detail::g_active.store(1, std::memory_order_release);
}

Result end() {
  std::shared_ptr<Controller> c;
  {
    std::lock_guard lock(g_session_mu);
    c.swap(g_session);
    detail::g_active.store(0, std::memory_order_release);
  }
  if (c == nullptr) return {};
  // finish() releases any thread still parked at a point (free run); the
  // shared_ptr keeps the controller alive until the last straggler leaves.
  return c->finish();
}

bool active() {
  return detail::g_active.load(std::memory_order_acquire) != 0;
}

void attach(const char* name) {
  if (auto c = session()) c->attach(name);
}

void detach() {
  if (auto c = session()) (void)c->detach();
}

DetachScope::DetachScope() {
  if (auto c = session()) {
    name_ = c->detach();
    was_attached_ = !name_.empty();
  }
}

DetachScope::~DetachScope() {
  if (!was_attached_) return;
  if (auto c = session()) c->attach(name_);
}

void expect_threads(std::size_t n) {
  if (auto c = session()) c->expect_threads(n);
}

void note_violation(const char* site, const char* detail) {
  const std::uint64_t n =
      g_violations.fetch_add(1, std::memory_order_relaxed);
  if (n < kPrintCap)
    std::fprintf(stderr, "sched: invariant violation at %s: %s\n", site,
                 detail);
}

std::uint64_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_violations() {
  g_violations.store(0, std::memory_order_relaxed);
}

}  // namespace depprof::sched
