#pragma once
// BENCH_*.json emission — the machine-readable side of every bench binary.
//
// Each bench binary builds one BenchReport: scalar metrics (the numbers its
// text tables already print) plus one or more labelled pipeline stage
// breakdowns (obs::PipelineSnapshot).  write() stores the JSON next to the
// working directory as BENCH_<name>.json and echoes it to stdout so the
// perf-trajectory collector can pick it up either way.

#include <string>
#include <utility>
#include <vector>

#include "obs/stage_stats.hpp"

namespace depprof::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Adds one scalar metric (printed with %.6g).
  void metric(const std::string& key, double value);

  /// Adds one labelled per-stage breakdown (e.g. one per configuration).
  void stages(const std::string& label, const PipelineSnapshot& snap);

  const std::string& name() const { return name_; }
  std::string path() const { return "BENCH_" + name_ + ".json"; }
  std::string json() const;

  /// Writes BENCH_<name>.json and echoes the JSON to stdout.
  void write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, PipelineSnapshot>> stages_;
};

}  // namespace depprof::obs
