#include "obs/report.hpp"

#include <cstdio>
#include <sstream>

namespace depprof::obs {
namespace {

std::string fmt_sec(double sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", sec);
  return buf;
}

}  // namespace

std::string snapshot_csv(const PipelineSnapshot& snap) {
  std::ostringstream os;
  os << "stage,events,chunks,stalls,queue_depth_hwm,busy_sec,cpu_sec,"
        "idle_sec,idle_cpu_sec,parked_sec,parks,block_sec,wakes,"
        "migrations,rounds,kernel_batches,prefetches,events_deduped,"
        "bytes_on_wire,pack_escapes,events_sampled_out,bursts,"
        "sampled_overhead_ppm,races_confirmed,races_unconfirmed,"
        "races_lock_suppressed,resident_pages,hugepage_fallbacks\n";
  for (const auto& s : snap.stages) {
    os << s.stage << ',' << s.events << ',' << s.chunks << ',' << s.stalls
       << ',' << s.queue_depth_hwm << ',' << fmt_sec(s.busy_sec()) << ','
       << fmt_sec(s.cpu_sec()) << ',' << fmt_sec(s.idle_sec()) << ','
       << fmt_sec(s.idle_cpu_sec()) << ',' << fmt_sec(s.parked_sec()) << ','
       << s.parks << ',' << fmt_sec(s.block_sec()) << ',' << s.wakes << ','
       << s.migrations << ',' << s.rounds << ',' << s.kernel_batches << ','
       << s.prefetches << ',' << s.events_deduped << ',' << s.bytes_on_wire
       << ',' << s.pack_escapes << ',' << s.events_sampled_out << ','
       << s.bursts << ',' << s.sampled_overhead_ppm << ','
       << s.races_confirmed << ',' << s.races_unconfirmed << ','
       << s.races_lock_suppressed << ',' << s.resident_pages << ','
       << s.hugepage_fallbacks << '\n';
  }
  return os.str();
}

std::string snapshot_json(const PipelineSnapshot& snap) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const auto& s : snap.stages) {
    if (!first) os << ',';
    first = false;
    os << "{\"stage\":\"" << s.stage << "\",\"events\":" << s.events
       << ",\"chunks\":" << s.chunks << ",\"stalls\":" << s.stalls
       << ",\"queue_depth_hwm\":" << s.queue_depth_hwm
       << ",\"busy_sec\":" << fmt_sec(s.busy_sec())
       << ",\"cpu_sec\":" << fmt_sec(s.cpu_sec())
       << ",\"idle_sec\":" << fmt_sec(s.idle_sec())
       << ",\"idle_cpu_sec\":" << fmt_sec(s.idle_cpu_sec())
       << ",\"parked_sec\":" << fmt_sec(s.parked_sec())
       << ",\"parks\":" << s.parks
       << ",\"block_sec\":" << fmt_sec(s.block_sec())
       << ",\"wakes\":" << s.wakes
       << ",\"migrations\":" << s.migrations << ",\"rounds\":" << s.rounds
       << ",\"kernel_batches\":" << s.kernel_batches
       << ",\"prefetches\":" << s.prefetches
       << ",\"events_deduped\":" << s.events_deduped
       << ",\"bytes_on_wire\":" << s.bytes_on_wire
       << ",\"pack_escapes\":" << s.pack_escapes
       << ",\"events_sampled_out\":" << s.events_sampled_out
       << ",\"bursts\":" << s.bursts
       << ",\"sampled_overhead_ppm\":" << s.sampled_overhead_ppm
       << ",\"races_confirmed\":" << s.races_confirmed
       << ",\"races_unconfirmed\":" << s.races_unconfirmed
       << ",\"races_lock_suppressed\":" << s.races_lock_suppressed
       << ",\"resident_pages\":" << s.resident_pages
       << ",\"hugepage_fallbacks\":" << s.hugepage_fallbacks << '}';
  }
  os << ']';
  return os.str();
}

std::string snapshot_text(const PipelineSnapshot& snap) {
  std::ostringstream os;
  char line[384];
  std::snprintf(line, sizeof(line),
                "%-11s %12s %10s %8s %10s %10s %10s %10s %10s %9s %7s %9s %6s "
                "%6s %6s %8s %10s %10s %12s %8s %10s %7s %8s %7s %7s %7s %9s "
                "%9s\n",
                "stage", "events", "chunks", "stalls", "depth_hwm", "busy_s",
                "cpu_s", "idle_s", "idlecpu_s", "parked_s", "parks", "block_s",
                "wakes", "moved", "rounds", "batches", "prefetch", "deduped",
                "wire_bytes", "escapes", "sampled", "bursts", "ovh_ppm",
                "races", "unconf", "locksup", "res_pages", "hp_fallbk");
  os << line;
  for (const auto& s : snap.stages) {
    std::snprintf(line, sizeof(line),
                  "%-11s %12llu %10llu %8llu %10llu %10.4f %10.4f %10.4f "
                  "%10.4f %9.4f %7llu %9.4f %6llu %6llu %6llu %8llu %10llu "
                  "%10llu %12llu %8llu %10llu %7llu %8llu %7llu %7llu %7llu "
                  "%9llu %9llu\n",
                  s.stage.c_str(), static_cast<unsigned long long>(s.events),
                  static_cast<unsigned long long>(s.chunks),
                  static_cast<unsigned long long>(s.stalls),
                  static_cast<unsigned long long>(s.queue_depth_hwm),
                  s.busy_sec(), s.cpu_sec(), s.idle_sec(), s.idle_cpu_sec(),
                  s.parked_sec(), static_cast<unsigned long long>(s.parks),
                  s.block_sec(), static_cast<unsigned long long>(s.wakes),
                  static_cast<unsigned long long>(s.migrations),
                  static_cast<unsigned long long>(s.rounds),
                  static_cast<unsigned long long>(s.kernel_batches),
                  static_cast<unsigned long long>(s.prefetches),
                  static_cast<unsigned long long>(s.events_deduped),
                  static_cast<unsigned long long>(s.bytes_on_wire),
                  static_cast<unsigned long long>(s.pack_escapes),
                  static_cast<unsigned long long>(s.events_sampled_out),
                  static_cast<unsigned long long>(s.bursts),
                  static_cast<unsigned long long>(s.sampled_overhead_ppm),
                  static_cast<unsigned long long>(s.races_confirmed),
                  static_cast<unsigned long long>(s.races_unconfirmed),
                  static_cast<unsigned long long>(s.races_lock_suppressed),
                  static_cast<unsigned long long>(s.resident_pages),
                  static_cast<unsigned long long>(s.hugepage_fallbacks));
    os << line;
  }
  return os.str();
}

}  // namespace depprof::obs
