#pragma once
// Rendering of pipeline stage snapshots: human-readable table for terminal
// output, CSV and JSON for the `depprof --stats` report and the bench
// binaries' BENCH_*.json stage breakdowns.

#include <string>

#include "obs/stage_stats.hpp"

namespace depprof::obs {

/// CSV, one row per stage:
/// stage,events,chunks,stalls,queue_depth_hwm,busy_sec,cpu_sec,idle_sec,
/// idle_cpu_sec,parked_sec,parks,block_sec,wakes,migrations,rounds
std::string snapshot_csv(const PipelineSnapshot& snap);

/// JSON array of stage objects (same fields as the CSV).
std::string snapshot_json(const PipelineSnapshot& snap);

/// Aligned human-readable table.
std::string snapshot_text(const PipelineSnapshot& snap);

}  // namespace depprof::obs
