#include "obs/bench_report.hpp"

#include <cstdio>
#include <sstream>

#include "obs/report.hpp"

namespace depprof::obs {

void BenchReport::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchReport::stages(const std::string& label, const PipelineSnapshot& snap) {
  stages_.emplace_back(label, snap);
}

std::string BenchReport::json() const {
  std::ostringstream os;
  os << "{\"bench\":\"" << name_ << "\",\"metrics\":{";
  bool first = true;
  char num[32];
  for (const auto& [key, value] : metrics_) {
    if (!first) os << ',';
    first = false;
    std::snprintf(num, sizeof(num), "%.6g", value);
    os << '"' << key << "\":" << num;
  }
  os << "},\"stage_breakdowns\":{";
  first = true;
  for (const auto& [label, snap] : stages_) {
    if (!first) os << ',';
    first = false;
    os << '"' << label << "\":" << snapshot_json(snap);
  }
  os << "}}";
  return os.str();
}

void BenchReport::write() const {
  const std::string text = json();
  const std::string file = path();
  if (std::FILE* f = std::fopen(file.c_str(), "w")) {
    std::fputs(text.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  std::printf("\nJSON (%s):\n%s\n", file.c_str(), text.c_str());
}

}  // namespace depprof::obs
