#pragma once
// Per-stage observability counters for the profiler pipeline.
//
// The Fig. 2 pipeline is a chain of stages — produce (chunk batching on the
// target threads), route (address ownership + load balancing), detect (one
// Algorithm 1 instance per worker), merge (folding the worker-local maps
// into the global one).  Each stage instance owns one cache-line-padded
// block of monotonic counters so that the hot path never shares a line with
// another stage and a concurrent snapshot never tears a stage in half.
//
// All mutation is relaxed-atomic: the counters are statistics, not
// synchronization.  Counters only ever increase (high-water marks included),
// so any two snapshots of a live pipeline are ordered component-wise — the
// monotonicity property obs_test asserts.
//
// Clock domains (see common/timer.hpp): busy_ns, idle_ns, parked_ns, and
// block_ns are wall-clock on the owning thread, so busy/idle/parked ratios
// are internally consistent; cpu_ns and idle_cpu_ns are CLOCK_THREAD_CPUTIME
// on the same intervals — cpu_ns feeds the simulated parallel time (it
// excludes preemption and parked sleep), idle_cpu_ns is the CPU a wait
// strategy burned while the stage had no input (the oversubscription metric
// of bench/ablation_waitstrategy).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace depprof::obs {

/// One cache-line-padded block of monotonic counters for a stage instance.
struct alignas(64) StageStats {
  std::atomic<std::uint64_t> events{0};   ///< accesses through the stage
  std::atomic<std::uint64_t> chunks{0};   ///< chunks/batches through the stage
  std::atomic<std::uint64_t> stalls{0};   ///< queue-full push retries
  std::atomic<std::uint64_t> queue_depth_hwm{0};  ///< most chunks ever queued
  std::atomic<std::uint64_t> busy_ns{0};  ///< wall time spent processing input
  std::atomic<std::uint64_t> cpu_ns{0};   ///< thread-CPU time spent processing
  std::atomic<std::uint64_t> idle_ns{0};  ///< wall time spent waiting for input
  std::atomic<std::uint64_t> idle_cpu_ns{0};  ///< thread-CPU burned while waiting
  std::atomic<std::uint64_t> parked_ns{0};  ///< wall time blocked in the OS
  std::atomic<std::uint64_t> parks{0};      ///< blocking episodes (eventcount waits)
  std::atomic<std::uint64_t> block_ns{0};  ///< wall time blocked on backpressure
  std::atomic<std::uint64_t> wakes{0};     ///< wakeups this stage delivered to peers
  std::atomic<std::uint64_t> migrations{0};  ///< addresses rerouted (route stage)
  std::atomic<std::uint64_t> rounds{0};      ///< redistribution rounds (route stage)
  std::atomic<std::uint64_t> kernel_batches{0};  ///< batched-kernel invocations (detect)
  std::atomic<std::uint64_t> prefetches{0};      ///< slot prefetches issued K ahead (detect)
  std::atomic<std::uint64_t> events_deduped{0};  ///< accesses elided as exact repeats (produce)
  std::atomic<std::uint64_t> bytes_on_wire{0};   ///< chunk payload bytes actually queued (produce)
  std::atomic<std::uint64_t> pack_escapes{0};    ///< wire records that needed the escape slot (produce)
  std::atomic<std::uint64_t> events_sampled_out{0};  ///< accesses dropped by the sampling gate (produce)
  std::atomic<std::uint64_t> bursts{0};              ///< sampling gaps closed by a burst marker (produce)
  std::atomic<std::uint64_t> sampled_overhead_ppm{0};  ///< controller's measured overhead, parts per million (produce, hwm)
  std::atomic<std::uint64_t> races_confirmed{0};       ///< merged keys with a timestamp reversal (produce, published at finish)
  std::atomic<std::uint64_t> races_unconfirmed{0};     ///< cross-thread candidate keys, no reversal (produce, published at finish)
  std::atomic<std::uint64_t> races_lock_suppressed{0}; ///< candidate keys fully inside lock regions (produce, published at finish)
  std::atomic<std::uint64_t> resident_pages{0};        ///< paged-store leaf pages resident (detect, published at finish)
  std::atomic<std::uint64_t> hugepage_fallbacks{0};    ///< huge allocs degraded to operator new (produce, published at finish)

  void add_events(std::uint64_t n) { events.fetch_add(n, std::memory_order_relaxed); }
  void add_chunks(std::uint64_t n) { chunks.fetch_add(n, std::memory_order_relaxed); }
  void add_stalls(std::uint64_t n) { stalls.fetch_add(n, std::memory_order_relaxed); }
  void add_busy_ns(std::uint64_t n) { busy_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_cpu_ns(std::uint64_t n) { cpu_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_idle_ns(std::uint64_t n) { idle_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_idle_cpu_ns(std::uint64_t n) { idle_cpu_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_parked_ns(std::uint64_t n) { parked_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_parks(std::uint64_t n) { parks.fetch_add(n, std::memory_order_relaxed); }
  void add_block_ns(std::uint64_t n) { block_ns.fetch_add(n, std::memory_order_relaxed); }
  void add_wakes(std::uint64_t n) {
    if (n != 0) wakes.fetch_add(n, std::memory_order_relaxed);
  }
  void add_migrations(std::uint64_t n) { migrations.fetch_add(n, std::memory_order_relaxed); }
  void add_rounds(std::uint64_t n) { rounds.fetch_add(n, std::memory_order_relaxed); }
  void add_kernel_batches(std::uint64_t n) { kernel_batches.fetch_add(n, std::memory_order_relaxed); }
  void add_prefetches(std::uint64_t n) { prefetches.fetch_add(n, std::memory_order_relaxed); }
  void add_events_deduped(std::uint64_t n) { events_deduped.fetch_add(n, std::memory_order_relaxed); }
  void add_bytes_on_wire(std::uint64_t n) { bytes_on_wire.fetch_add(n, std::memory_order_relaxed); }
  void add_pack_escapes(std::uint64_t n) { pack_escapes.fetch_add(n, std::memory_order_relaxed); }
  void add_events_sampled_out(std::uint64_t n) { events_sampled_out.fetch_add(n, std::memory_order_relaxed); }
  void add_bursts(std::uint64_t n) { bursts.fetch_add(n, std::memory_order_relaxed); }
  void add_races_confirmed(std::uint64_t n) { races_confirmed.fetch_add(n, std::memory_order_relaxed); }
  void add_races_unconfirmed(std::uint64_t n) { races_unconfirmed.fetch_add(n, std::memory_order_relaxed); }
  void add_races_lock_suppressed(std::uint64_t n) { races_lock_suppressed.fetch_add(n, std::memory_order_relaxed); }
  void add_resident_pages(std::uint64_t n) { resident_pages.fetch_add(n, std::memory_order_relaxed); }
  void add_hugepage_fallbacks(std::uint64_t n) { hugepage_fallbacks.fetch_add(n, std::memory_order_relaxed); }

  /// Latches the controller's latest overhead estimate, keeping the counter
  /// monotone (obs_test's snapshot-ordering property) by only raising it.
  void raise_sampled_overhead_ppm(std::uint64_t ppm) {
    std::uint64_t cur = sampled_overhead_ppm.load(std::memory_order_relaxed);
    while (ppm > cur &&
           !sampled_overhead_ppm.compare_exchange_weak(
               cur, ppm, std::memory_order_relaxed)) {
    }
  }

  /// Raises the queue-depth high-water mark to `depth` if it is higher.
  void raise_queue_depth(std::uint64_t depth) {
    std::uint64_t cur = queue_depth_hwm.load(std::memory_order_relaxed);
    while (depth > cur &&
           !queue_depth_hwm.compare_exchange_weak(cur, depth,
                                                  std::memory_order_relaxed)) {
    }
  }
};

static_assert(sizeof(StageStats) == 256,
              "whole cache lines only: no stage shares a line with another");

/// Plain-data copy of one stage's counters at a point in time.
struct StageSnapshot {
  std::string stage;  ///< "produce", "route", "detect[i]", "merge"
  std::uint64_t events = 0;
  std::uint64_t chunks = 0;
  std::uint64_t stalls = 0;
  std::uint64_t queue_depth_hwm = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t idle_cpu_ns = 0;
  std::uint64_t parked_ns = 0;
  std::uint64_t parks = 0;
  std::uint64_t block_ns = 0;
  std::uint64_t wakes = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t kernel_batches = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t events_deduped = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t pack_escapes = 0;
  std::uint64_t events_sampled_out = 0;
  std::uint64_t bursts = 0;
  std::uint64_t sampled_overhead_ppm = 0;
  std::uint64_t races_confirmed = 0;
  std::uint64_t races_unconfirmed = 0;
  std::uint64_t races_lock_suppressed = 0;
  std::uint64_t resident_pages = 0;
  std::uint64_t hugepage_fallbacks = 0;

  double busy_sec() const { return static_cast<double>(busy_ns) * 1e-9; }
  double cpu_sec() const { return static_cast<double>(cpu_ns) * 1e-9; }
  double idle_sec() const { return static_cast<double>(idle_ns) * 1e-9; }
  double idle_cpu_sec() const { return static_cast<double>(idle_cpu_ns) * 1e-9; }
  double parked_sec() const { return static_cast<double>(parked_ns) * 1e-9; }
  double block_sec() const { return static_cast<double>(block_ns) * 1e-9; }
};

/// Point-in-time copy of every stage of one pipeline.
struct PipelineSnapshot {
  std::vector<StageSnapshot> stages;

  bool empty() const { return stages.empty(); }

  const StageSnapshot* find(const std::string& name) const {
    for (const auto& s : stages)
      if (s.stage == name) return &s;
    return nullptr;
  }

  /// Sum of a counter over the detect stages (per-worker Algorithm 1 runs).
  std::uint64_t detect_events() const {
    std::uint64_t sum = 0;
    for (const auto& s : stages)
      if (s.stage.rfind("detect", 0) == 0) sum += s.events;
    return sum;
  }
};

/// Counter blocks for one pipeline instance: produce, route, one detect
/// block per worker, merge.  The serial profiler is the one-worker special
/// case of the same layout, which is what gives ProfilerStats a single
/// well-defined shape for both profilers.
class PipelineObs {
 public:
  explicit PipelineObs(unsigned workers)
      : workers_(workers ? workers : 1),
        detect_(std::make_unique<StageStats[]>(workers_)) {}

  unsigned workers() const { return workers_; }

  StageStats& produce() { return produce_; }
  StageStats& route() { return route_; }
  StageStats& detect(unsigned worker) { return detect_[worker]; }
  StageStats& merge() { return merge_; }

  /// Sum of thread-CPU time across all stages — the profiler's own cost,
  /// cheap enough to probe from the sampling controller between bursts
  /// (AccessSink::profiling_cost_ns).
  std::uint64_t total_cpu_ns() const {
    std::uint64_t ns = produce_.cpu_ns.load(std::memory_order_relaxed) +
                       route_.cpu_ns.load(std::memory_order_relaxed) +
                       merge_.cpu_ns.load(std::memory_order_relaxed);
    for (unsigned w = 0; w < workers_; ++w)
      ns += detect_[w].cpu_ns.load(std::memory_order_relaxed);
    return ns;
  }

  PipelineSnapshot snapshot() const {
    PipelineSnapshot snap;
    snap.stages.reserve(workers_ + 3);
    snap.stages.push_back(read("produce", produce_));
    snap.stages.push_back(read("route", route_));
    for (unsigned w = 0; w < workers_; ++w)
      snap.stages.push_back(read("detect[" + std::to_string(w) + "]", detect_[w]));
    snap.stages.push_back(read("merge", merge_));
    return snap;
  }

 private:
  static StageSnapshot read(std::string name, const StageStats& s) {
    StageSnapshot out;
    out.stage = std::move(name);
    out.events = s.events.load(std::memory_order_relaxed);
    out.chunks = s.chunks.load(std::memory_order_relaxed);
    out.stalls = s.stalls.load(std::memory_order_relaxed);
    out.queue_depth_hwm = s.queue_depth_hwm.load(std::memory_order_relaxed);
    out.busy_ns = s.busy_ns.load(std::memory_order_relaxed);
    out.cpu_ns = s.cpu_ns.load(std::memory_order_relaxed);
    out.idle_ns = s.idle_ns.load(std::memory_order_relaxed);
    out.idle_cpu_ns = s.idle_cpu_ns.load(std::memory_order_relaxed);
    out.parked_ns = s.parked_ns.load(std::memory_order_relaxed);
    out.parks = s.parks.load(std::memory_order_relaxed);
    out.block_ns = s.block_ns.load(std::memory_order_relaxed);
    out.wakes = s.wakes.load(std::memory_order_relaxed);
    out.migrations = s.migrations.load(std::memory_order_relaxed);
    out.rounds = s.rounds.load(std::memory_order_relaxed);
    out.kernel_batches = s.kernel_batches.load(std::memory_order_relaxed);
    out.prefetches = s.prefetches.load(std::memory_order_relaxed);
    out.events_deduped = s.events_deduped.load(std::memory_order_relaxed);
    out.bytes_on_wire = s.bytes_on_wire.load(std::memory_order_relaxed);
    out.pack_escapes = s.pack_escapes.load(std::memory_order_relaxed);
    out.events_sampled_out =
        s.events_sampled_out.load(std::memory_order_relaxed);
    out.bursts = s.bursts.load(std::memory_order_relaxed);
    out.sampled_overhead_ppm =
        s.sampled_overhead_ppm.load(std::memory_order_relaxed);
    out.races_confirmed = s.races_confirmed.load(std::memory_order_relaxed);
    out.races_unconfirmed =
        s.races_unconfirmed.load(std::memory_order_relaxed);
    out.races_lock_suppressed =
        s.races_lock_suppressed.load(std::memory_order_relaxed);
    out.resident_pages = s.resident_pages.load(std::memory_order_relaxed);
    out.hugepage_fallbacks =
        s.hugepage_fallbacks.load(std::memory_order_relaxed);
    return out;
  }

  unsigned workers_;
  StageStats produce_;
  StageStats route_;
  std::unique_ptr<StageStats[]> detect_;
  StageStats merge_;
};

}  // namespace depprof::obs
