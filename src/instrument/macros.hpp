#pragma once
// Source-level instrumentation macros — the LLVM-pass substitute.
//
// Usage in an instrumented translation unit:
//
//   #include "instrument/macros.hpp"
//   DP_FILE("c-ray");                 // once, at namespace scope
//   ...
//   DP_LOOP_BEGIN();                  // at loop entry
//   for (...) { DP_LOOP_ITER();       // at each iteration head
//     DP_READ(a[i]); x = a[i];        // before each instrumented load
//     DP_WRITE(b[i]); b[i] = x;       // before each instrumented store
//   }
//   DP_LOOP_END();                    // at loop exit
//
// When no profiler is attached every macro costs one predicted branch, so
// the identical binary provides the native baseline of the slowdown
// experiments.  Scalars held in registers by the compiler are deliberately
// not instrumented — the same accesses would not appear as IR loads/stores
// under -O2 in the paper's setup either.

#include "common/location.hpp"
#include "instrument/runtime.hpp"

/// Registers this translation unit's file name; defines the file id used by
/// all other macros.  Place once at namespace scope.
#define DP_FILE(name)                                          \
  namespace {                                                  \
  const std::uint32_t dp_file_id_ =                            \
      ::depprof::file_registry().intern(name);                 \
  }                                                            \
  static_assert(true, "require trailing semicolon")

#define DP_ACCESS_(lvalue, is_write)                                        \
  do {                                                                      \
    if (::depprof::Runtime::instance().enabled()) {                         \
      static const std::uint32_t dp_var_id_ =                               \
          ::depprof::var_registry().intern(#lvalue);                        \
      ::depprof::Runtime::instance().record(&(lvalue), sizeof(lvalue),      \
                                            dp_file_id_, __LINE__,          \
                                            dp_var_id_, (is_write));        \
    }                                                                       \
  } while (0)

/// Instrumented load of an lvalue (place immediately before the access).
#define DP_READ(lvalue) DP_ACCESS_(lvalue, false)

/// Instrumented store to an lvalue (place immediately before the access).
#define DP_WRITE(lvalue) DP_ACCESS_(lvalue, true)

/// Read-modify-write (e.g. `x += e`): one load followed by one store.
#define DP_UPDATE(lvalue) \
  do {                    \
    DP_READ(lvalue);      \
    DP_WRITE(lvalue);     \
  } while (0)

/// Instrumented access through a pointer with an explicit variable name.
#define DP_ACCESS_AT(ptr, size, var_name, is_write)                          \
  do {                                                                       \
    if (::depprof::Runtime::instance().enabled()) {                          \
      static const std::uint32_t dp_var_id_ =                                \
          ::depprof::var_registry().intern(var_name);                        \
      ::depprof::Runtime::instance().record((ptr), (size), dp_file_id_,      \
                                            __LINE__, dp_var_id_,            \
                                            (is_write));                     \
    }                                                                        \
  } while (0)

#define DP_READ_AT(ptr, size, var_name) DP_ACCESS_AT(ptr, size, var_name, false)
#define DP_WRITE_AT(ptr, size, var_name) DP_ACCESS_AT(ptr, size, var_name, true)

/// Variable-lifetime event (Sec. III-B): the range [ptr, ptr+size) became
/// obsolete (free / scope exit); clears its signature slots.
#define DP_FREE(ptr, size)                                        \
  do {                                                            \
    if (::depprof::Runtime::instance().enabled())                 \
      ::depprof::Runtime::instance().record_free((ptr), (size));  \
  } while (0)

/// Control-region markers (Sec. III-A: BGN/END loop records with executed
/// iteration counts).
#define DP_LOOP_BEGIN()                                                 \
  do {                                                                  \
    if (::depprof::Runtime::instance().enabled())                       \
      ::depprof::Runtime::instance().loop_begin(dp_file_id_, __LINE__); \
  } while (0)

#define DP_LOOP_ITER()                                 \
  do {                                                 \
    if (::depprof::Runtime::instance().enabled())      \
      ::depprof::Runtime::instance().loop_iter();      \
  } while (0)

#define DP_LOOP_END()                                                 \
  do {                                                                \
    if (::depprof::Runtime::instance().enabled())                     \
      ::depprof::Runtime::instance().loop_end(dp_file_id_, __LINE__); \
  } while (0)

/// Marks the *next* line's update as a reduction (x = x op e) for the
/// parallelism-discovery analysis.  Place on the same line as the update.
#define DP_REDUCTION()                                                      \
  do {                                                                      \
    if (::depprof::Runtime::instance().enabled())                           \
      ::depprof::Runtime::instance().mark_reduction(dp_file_id_, __LINE__); \
  } while (0)

namespace depprof::detail {

/// RAII function-scope guard behind DP_FUNCTION.
class FunctionGuard {
 public:
  FunctionGuard(std::uint32_t file, std::uint32_t line, std::uint32_t name_id)
      : active_(Runtime::instance().enabled()) {
    if (active_) Runtime::instance().func_enter(file, line, name_id);
  }
  ~FunctionGuard() {
    if (active_) Runtime::instance().func_exit();
  }
  FunctionGuard(const FunctionGuard&) = delete;
  FunctionGuard& operator=(const FunctionGuard&) = delete;

 private:
  bool active_;
};

}  // namespace depprof::detail

/// Function-scope marker: place at the top of an instrumented function.
/// Records entry/exit for the dynamic call tree (Sec. VIII framework).
#define DP_FUNCTION(name)                                                 \
  static const std::uint32_t dp_func_name_id_ =                           \
      ::depprof::var_registry().intern(name);                             \
  ::depprof::detail::FunctionGuard dp_func_guard_(dp_file_id_, __LINE__,  \
                                                  dp_func_name_id_)

/// Implicit synchronization point (thread create/join, barrier arrival):
/// flushes the calling thread's buffered accesses so that synchronization-
/// ordered accesses also arrive at the profiler in order (Sec. V-A).  Place
/// before spawning threads that read this thread's writes, at the end of a
/// thread body, and after barrier waits.
#define DP_SYNC()                                      \
  do {                                                 \
    if (::depprof::Runtime::instance().enabled())      \
      ::depprof::Runtime::instance().sync_point();     \
  } while (0)

/// Lock-region markers for MT targets (Sec. V, Fig. 4).  Call DP_LOCK_ENTER
/// right after acquiring a target-program lock and DP_LOCK_EXIT right before
/// releasing it; buffered accesses are pushed before the release.
#define DP_LOCK_ENTER()                               \
  do {                                                \
    if (::depprof::Runtime::instance().enabled())     \
      ::depprof::Runtime::instance().lock_enter();    \
  } while (0)

#define DP_LOCK_EXIT()                                \
  do {                                                \
    if (::depprof::Runtime::instance().enabled())     \
      ::depprof::Runtime::instance().lock_exit();     \
  } while (0)
