#pragma once
// Instrumentation runtime — the LLVM-pass substitute (see DESIGN.md).
//
// The paper instruments every IR load/store with a call carrying the address
// and source location (Fig. 4).  Here the DP_* macros (macros.hpp) expand to
// calls into this runtime, which assembles full AccessEvents: source
// location, variable name, innermost-loop context, thread id, and (for MT
// targets) a global timestamp, and forwards them to the attached profiler.
//
// The runtime also records runtime control-flow information (Sec. III-A):
// loop entry/exit locations and executed iteration counts, and tracks
// explicit lock regions of MT targets so that an access and its push stay
// atomic (Sec. V, Fig. 4).
//
// When no sink is attached the per-access cost is a single predicted branch,
// so the same workload binary serves as the "native" baseline of the
// slowdown experiments.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/location.hpp"
#include "instrument/dedup.hpp"
#include "trace/call_tree.hpp"
#include "trace/control_flow.hpp"
#include "trace/event.hpp"
#include "trace/event_buffer.hpp"

namespace depprof {

/// Overhead-budget sampling policy for one profiling session (see DESIGN.md
/// "Overhead-budget sampling").  The sampling unit is one iteration of an
/// outermost loop on the recording thread: a profiled unit is observed
/// whole — every inner-loop invocation inside it included — so loop-carried
/// distances stay exact within a burst.  Accesses outside any loop are
/// always profiled.  Disabled entirely in mt_mode (cross-thread gaps would
/// need a global cut, which the per-thread unit cannot provide).
struct SamplingConfig {
  /// Target overhead fraction.  < 1.0 enables the adaptive controller:
  /// profiling cost is measured online from the sink's stage CPU clocks
  /// (AccessSink::profiling_cost_ns) and `skip` is adjusted between bursts
  /// to steer measured overhead toward the target.  >= 1.0 leaves the
  /// schedule fixed.
  double budget = 1.0;
  /// Units profiled per burst (the B of the B-on / K-off cycle).
  unsigned burst = 8;
  /// Units skipped between bursts.  budget >= 1.0 with skip == 0 means
  /// sampling is entirely off: no gate, no markers, byte-identical output.
  unsigned skip = 0;

  bool enabled() const { return skip > 0 || budget < 1.0; }
};

class Runtime {
 public:
  static Runtime& instance();

  /// Attaches the profiler (or trace recorder) receiving events.  `mt_mode`
  /// enables global timestamps for multi-threaded targets.  `dedup` enables
  /// the front-end redundancy-elision cache (instrument/dedup.hpp): exact
  /// repeats of an access are run-length encoded into the outgoing batches
  /// instead of re-buffered.  Ignored in mt_mode, where every event carries
  /// a fresh timestamp the race check depends on.  The depprof CLI wires
  /// this from ProfilerConfig::dedup (default on); the parameter itself
  /// defaults off so recorders and existing harnesses see the verbatim
  /// stream unless they opt in.  `sampling` selects the overhead-budget
  /// burst schedule (also ignored in mt_mode); the default is fully off.
  void attach(AccessSink* sink, bool mt_mode = false, bool dedup = false,
              SamplingConfig sampling = {});

  /// Detaches the sink and calls its finish().  Control-flow data remains
  /// readable until the next attach().
  void detach();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // --- access events (out-of-line slow path of the macros) --------------

  void record(const void* addr, std::size_t size, std::uint32_t file,
              std::uint32_t line, std::uint32_t var, bool is_write);

  /// Variable-lifetime event (Sec. III-B): `size` bytes at `addr` became
  /// obsolete; their signature slots are cleared at word granularity.
  void record_free(const void* addr, std::size_t size);

  // --- control flow ------------------------------------------------------

  /// Loop entry at file:line.  Loops are identified by their entry
  /// location; each dynamic entry is interned as a fresh NestForest node
  /// under the thread's current innermost entry, and the observed
  /// parent->child nesting edge is recorded for the control-flow nest tree.
  void loop_begin(std::uint32_t file, std::uint32_t line);
  /// One iteration boundary of the innermost active loop of this thread.
  /// Ignored (and counted as stray) when the thread's loop stack is empty —
  /// a thread created inside a loop body sees its enclosing markers from
  /// the parent thread only.
  void loop_iter();
  /// Loop exit at file:line for the innermost active loop.  Ignored (and
  /// counted as stray) on an empty per-thread loop stack.
  void loop_end(std::uint32_t file, std::uint32_t line);

  /// Function entry/exit (DP_FUNCTION guard).  Builds the dynamic call tree
  /// consumed by the Sec. VIII framework's execution-tree representation.
  void func_enter(std::uint32_t file, std::uint32_t line, std::uint32_t name_id);
  void func_exit();

  /// Call tree of the current (or last detached) session.
  CallTree call_tree() const;

  // --- lock regions (MT targets, Sec. V) ---------------------------------

  void lock_enter();
  void lock_exit();

  /// Implicit synchronization point (thread create/join, barrier): the
  /// calling thread's buffered accesses are pushed so that accesses ordered
  /// by the synchronization also arrive at the workers in order.  This is
  /// the "implicit synchronization patterns" support the paper sketches at
  /// the end of Sec. V-A.
  void sync_point();

  // --- analysis hints -----------------------------------------------------

  /// Marks file:line as a reduction update (x = x op e).  The paper's LLVM
  /// pass recognises the instruction pattern; at source level the workload
  /// marks the line.  The Sec. VII-A analysis ignores self-carried RAW
  /// dependences on marked lines.
  void mark_reduction(std::uint32_t file, std::uint32_t line);

  /// Packed locations of all marked reduction lines.
  std::vector<std::uint32_t> reduction_lines() const;

  // --- bookkeeping --------------------------------------------------------

  /// Thread id of the calling target thread (assigned on first use; the
  /// first registering thread of an epoch gets id 0).
  std::uint16_t thread_id();

  /// Binds the calling thread to an explicit id for the current epoch.
  /// Workloads with a meaningful thread numbering (e.g. spatial blocks in
  /// water-spatial) call this so that dependence endpoints and the Fig. 9
  /// communication axes reflect that numbering instead of first-touch order.
  void bind_thread_id(std::uint16_t tid);

  /// Control-flow log of the current (or last detached) session.
  ControlFlowLog control_flow() const;

  /// Clears control flow, timestamps, and thread-id assignment.  Must not be
  /// called while a sink is attached.
  void reset();

 private:
  Runtime() = default;

  struct ActiveLoop {
    std::uint32_t loop_id = 0;
    std::uint32_t node = 0;  ///< interned NestForest entry of this execution
    std::uint32_t iter = 0;
  };

  struct ThreadState {
    std::uint64_t epoch = ~0ull;
    std::uint16_t tid = 0;
    int lock_depth = 0;
    bool registered = false;
    std::vector<ActiveLoop> loop_stack;
    std::vector<std::uint32_t> call_stack;  // CallTree node indices
    /// Per-thread chunk buffer: events accumulate here and flush through
    /// AccessSink::on_batch — the same chunk path trace replay uses.
    EventBuffer buffer;
    /// Front-end dedup cache over the buffered records.  Invalidated (O(1)
    /// generation bump) at every flush point — buffer flush/discard, loop
    /// begin/iter/end, lock and sync boundaries — and per-word by
    /// record_free for the freed span.
    DedupCache cache;
    // --- overhead-budget sampling (see SamplingConfig) -------------------
    unsigned unit_pos = 0;    ///< index of the next unit within the B+K cycle
    bool unit_off = false;    ///< current unit is being skipped
    bool pending_gap = false;  ///< >=1 event dropped since the last kept one
    std::uint64_t sampled_out = 0;  ///< accesses dropped by the gate
    std::uint64_t gaps_closed = 0;  ///< burst markers emitted
    // Adaptive-controller state, sampled at each cycle boundary.
    std::uint64_t ctl_wall_ns = 0;
    std::uint64_t ctl_cost_ns = 0;
    double ctl_ewma = 0.0;  ///< smoothed overhead estimate (0 = no sample yet)
    /// True while the owning thread is inside a record/flush critical
    /// section using the attached sink.  attach()/detach() swap the sink
    /// pointer first and then wait for every registered thread's flag to
    /// clear, so a thread that passed the enabled() check can never reach
    /// the sink (or its own buffer) concurrently with the swap-side flush.
    std::atomic<bool> in_flight{false};
    ~ThreadState();
  };

  /// RAII sink snapshot for the record-side critical sections.  Raises the
  /// thread's in_flight flag, then snapshots the sink exactly once; sink()
  /// is nullptr when the profiler detached after the caller's enabled()
  /// check, in which case the flag is already released and the caller must
  /// bail out without touching its buffer.
  class SinkUse {
   public:
    SinkUse(Runtime& rt, ThreadState& ts) : ts_(&ts) {
      // seq_cst store/load pair with the seq_cst sink swap in attach/detach:
      // either this use sees the swapped pointer, or the swapper sees the
      // raised flag and waits for release().
      ts_->in_flight.store(true, std::memory_order_seq_cst);
      sink_ = rt.sink_.load(std::memory_order_seq_cst);
      if (sink_ == nullptr) release();
    }
    ~SinkUse() { release(); }
    SinkUse(const SinkUse&) = delete;
    SinkUse& operator=(const SinkUse&) = delete;
    AccessSink* sink() const { return sink_; }

   private:
    void release() {
      if (ts_ != nullptr) {
        ts_->in_flight.store(false, std::memory_order_release);
        ts_ = nullptr;
      }
    }
    ThreadState* ts_;
    AccessSink* sink_ = nullptr;
  };

  ThreadState& thread_state();
  void forget_thread(ThreadState& state);
  /// Starts the next sampling unit on `ts`: decides whether it is profiled
  /// or skipped, and runs the adaptive controller at each cycle boundary.
  void begin_unit(ThreadState& ts);
  /// Adaptive feedback step: measures the overhead of the finished cycle
  /// from the sink's stage CPU clocks and retunes the skip count.
  void controller_tick(ThreadState& ts, unsigned burst);
  /// Emits the kBurstMark that closes a sampling gap, before the first kept
  /// event after it reaches the buffer.
  void close_gap(ThreadState& ts, AccessSink& sink);
  /// Spins until no registered thread is inside a SinkUse section.  Caller
  /// holds buffers_mu_ and has already swapped sink_, so no new section can
  /// observe the old sink.  Threads inside a section never block on
  /// buffers_mu_ (registration happens before the flag is raised), so the
  /// wait is bounded by one in-flight record per thread.
  void drain_in_flight_locked();

  std::atomic<bool> enabled_{false};
  std::atomic<AccessSink*> sink_{nullptr};
  std::atomic<bool> mt_mode_{false};
  std::atomic<bool> dedup_{false};
  std::atomic<bool> sampling_on_{false};
  std::atomic<bool> adaptive_{false};
  std::atomic<unsigned> sampling_burst_{8};
  std::atomic<unsigned> sampling_skip_{0};  ///< retuned live by the controller
  double budget_target_ = 1.0;  ///< written at attach only
  /// Latest controller overhead estimate, parts per million.
  std::atomic<std::uint64_t> measured_overhead_ppm_{0};
  /// Gate/marker counters of threads that exited mid-session.
  std::atomic<std::uint64_t> exited_sampled_out_{0};
  std::atomic<std::uint64_t> exited_gaps_closed_{0};
  std::atomic<std::uint64_t> timestamp_{1};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint16_t> next_tid_{0};

  /// Guards the live-thread registry so attach/detach can discard or flush
  /// every thread's buffered events.
  std::mutex buffers_mu_;
  std::vector<ThreadState*> threads_;

  mutable std::mutex cf_mu_;
  std::unordered_map<std::uint32_t, LoopRecord> loops_;  // keyed by entry loc
  /// Observed nesting edges, keyed by (parent loop id << 32 | child loop id).
  std::unordered_map<std::uint64_t, std::uint64_t> nest_edges_;
  std::uint64_t stray_iters_ = 0;
  std::uint64_t stray_ends_ = 0;
  std::vector<std::uint32_t> reduction_lines_;
  CallTree call_tree_;
};

}  // namespace depprof
