#include "instrument/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"
#include "common/timer.hpp"
#include "trace/nest.hpp"

namespace depprof {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::ThreadState::~ThreadState() {
  Runtime::instance().forget_thread(*this);
}

Runtime::ThreadState& Runtime::thread_state() {
  thread_local ThreadState state;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (state.epoch != epoch) {
    state.epoch = epoch;
    state.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    state.lock_depth = 0;
    state.loop_stack.clear();
    state.call_stack.clear();
    state.buffer.discard();
    state.cache.invalidate_all();
    state.unit_pos = 0;
    state.unit_off = false;
    state.pending_gap = false;
    state.sampled_out = 0;
    state.gaps_closed = 0;
    state.ctl_wall_ns = 0;
    state.ctl_cost_ns = 0;
    state.ctl_ewma = 0.0;
  }
  if (!state.registered) {
    std::lock_guard lock(buffers_mu_);
    threads_.push_back(&state);
    state.registered = true;
  }
  return state;
}

void Runtime::forget_thread(ThreadState& state) {
  std::lock_guard lock(buffers_mu_);
  // A thread exiting mid-session must not drop its tail of buffered events.
  AccessSink* sink = sink_.load(std::memory_order_acquire);
  if (enabled_.load(std::memory_order_acquire) && sink != nullptr)
    state.buffer.flush(*sink);
  state.cache.invalidate_all();
  // A pending gap dies with the thread: no later event of this thread can
  // be attributed across it, so no closing marker is needed — but the gate
  // counters must survive into the session totals.
  exited_sampled_out_.fetch_add(state.sampled_out, std::memory_order_relaxed);
  exited_gaps_closed_.fetch_add(state.gaps_closed, std::memory_order_relaxed);
  state.sampled_out = 0;
  state.gaps_closed = 0;
  state.unit_pos = 0;
  state.unit_off = false;
  state.pending_gap = false;
  threads_.erase(std::remove(threads_.begin(), threads_.end(), &state),
                 threads_.end());
}

void Runtime::drain_in_flight_locked() {
  for (ThreadState* ts : threads_)
    while (ts->in_flight.load(std::memory_order_seq_cst)) {
    }
}

void Runtime::attach(AccessSink* sink, bool mt_mode, bool dedup,
                     SamplingConfig sampling) {
  {
    // Buffers may still hold events of a previous session whose sink is
    // gone; they must not leak into the new one.  Late record() calls of
    // that session must have finished with their buffers before we discard.
    std::lock_guard lock(buffers_mu_);
    drain_in_flight_locked();
    for (ThreadState* ts : threads_) {
      ts->buffer.discard();
      ts->cache.invalidate_all();
      ts->unit_pos = 0;
      ts->unit_off = false;
      ts->pending_gap = false;
      ts->sampled_out = 0;
      ts->gaps_closed = 0;
      ts->ctl_wall_ns = 0;
      ts->ctl_cost_ns = 0;
      ts->ctl_ewma = 0.0;
    }
  }
  mt_mode_.store(mt_mode, std::memory_order_relaxed);
  // In mt_mode every event carries a fresh timestamp, so no two events are
  // ever identical — the cache could only miss.  Keep it off entirely.
  dedup_.store(dedup && !mt_mode, std::memory_order_relaxed);
  // Sampling is sequential-target only: a per-thread unit boundary cannot
  // cut an MT trace consistently across threads.
  const bool sample = sampling.enabled() && !mt_mode;
  sampling_on_.store(sample, std::memory_order_relaxed);
  adaptive_.store(sample && sampling.budget < 1.0, std::memory_order_relaxed);
  sampling_burst_.store(std::max(1u, sampling.burst),
                        std::memory_order_relaxed);
  sampling_skip_.store(sample ? sampling.skip : 0, std::memory_order_relaxed);
  budget_target_ = sampling.budget;
  measured_overhead_ppm_.store(0, std::memory_order_relaxed);
  exited_sampled_out_.store(0, std::memory_order_relaxed);
  exited_gaps_closed_.store(0, std::memory_order_relaxed);
  sink_.store(sink, std::memory_order_seq_cst);
  enabled_.store(sink != nullptr, std::memory_order_release);
}

void Runtime::detach() {
  enabled_.store(false, std::memory_order_release);
  // Swap the sink out first: record() snapshots it exactly once, so after
  // the drain below no target thread can still reach the old sink — a
  // thread that passed the enabled() check either saw the swap (and bailed)
  // or raised its in_flight flag before our load of it.
  AccessSink* sink = sink_.exchange(nullptr, std::memory_order_seq_cst);
  std::uint64_t sampled_out = exited_sampled_out_.load(std::memory_order_relaxed);
  std::uint64_t gaps = exited_gaps_closed_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(buffers_mu_);
    drain_in_flight_locked();
    for (ThreadState* ts : threads_) {
      if (sink != nullptr) ts->buffer.flush(*sink);
      ts->cache.invalidate_all();
      sampled_out += ts->sampled_out;
      gaps += ts->gaps_closed;
      ts->sampled_out = 0;
      ts->gaps_closed = 0;
      ts->unit_pos = 0;
      ts->unit_off = false;
      ts->pending_gap = false;
    }
  }
  if (sink != nullptr) {
    if (sampling_on_.load(std::memory_order_relaxed))
      sink->on_sampling_stats(
          sampled_out, gaps,
          measured_overhead_ppm_.load(std::memory_order_relaxed));
    sink->finish();
  }
  sampling_on_.store(false, std::memory_order_relaxed);
  adaptive_.store(false, std::memory_order_relaxed);
}

void Runtime::close_gap(ThreadState& ts, AccessSink& sink) {
  ts.pending_gap = false;
  ts.gaps_closed += 1;
  // The marker precedes the first kept event after any drop — whatever that
  // event is, loop-body or root-level.  Without it the kept event would be
  // detected against store state recorded before the gap, which can emit a
  // dependence the unsampled run attributes to a (dropped) later source —
  // an extra key, breaking the subset contract.
  AccessEvent mark;
  mark.kind = AccessKind::kBurstMark;
  mark.tid = ts.tid;
  if (ts.buffer.add(mark)) ts.buffer.flush(sink);
  // The marker clears all detection state downstream, so no post-gap repeat
  // may merge into a pre-gap buffered record.
  ts.cache.invalidate_all();
}

void Runtime::record(const void* addr, std::size_t size, std::uint32_t file,
                     std::uint32_t line, std::uint32_t var, bool is_write) {
  (void)size;
  ThreadState& ts = thread_state();
  if (ts.unit_off && !ts.loop_stack.empty()) {
    // Inside a skipped sampling unit: drop without touching the sink.
    ts.sampled_out += 1;
    ts.pending_gap = true;
    return;
  }
  SinkUse use(*this, ts);
  if (use.sink() == nullptr) return;  // detached after the enabled() check
  if (ts.pending_gap) close_gap(ts, *use.sink());
  AccessEvent ev;
  ev.addr = reinterpret_cast<std::uintptr_t>(addr);
  ev.loc = SourceLocation(file, line).packed();
  ev.var = var;
  ev.kind = is_write ? AccessKind::kWrite : AccessKind::kRead;
  ev.tid = ts.tid;
  const std::size_t depth = ts.loop_stack.size();
  if (depth > 0) {
    ev.ctx = ts.loop_stack.back().node;
    // Root-anchored iteration window: outermost loop first (event.hpp).
    for (std::size_t i = 0; i < kNestIters && i < depth; ++i)
      ev.iters[i] = ts.loop_stack[i].iter;
  }
  if (mt_mode_.load(std::memory_order_relaxed))
    ev.ts = timestamp_.fetch_add(1, std::memory_order_relaxed);
  if (ts.lock_depth > 0) ev.flags |= kInLockRegion;
  if (dedup_.load(std::memory_order_relaxed) && dedup_eligible(ev)) {
    // Front-end redundancy elision: an exact repeat of the most recent
    // buffered access to this word only bumps that record's rep counter.
    const std::uint64_t w = word_addr(ev.addr);
    const std::uint32_t idx = ts.cache.find(w);
    if (idx != DedupCache::kNoIndex &&
        same_access_identity(ts.buffer.at(idx), ev) && ts.buffer.bump_rep(idx))
      return;
    if (ts.buffer.add(ev)) {
      ts.buffer.flush(*use.sink());
      ts.cache.invalidate_all();
    } else {
      ts.cache.put(w, static_cast<std::uint32_t>(ts.buffer.size() - 1));
    }
    return;
  }
  const bool full = ts.buffer.add(ev);
  // Inside a lock region the access and its push must stay atomic (Fig. 4):
  // deliver immediately so no other thread can enter the region and push a
  // conflicting access first.
  if (full || ts.lock_depth > 0) {
    ts.buffer.flush(*use.sink());
    ts.cache.invalidate_all();
  }
}

void Runtime::record_free(const void* addr, std::size_t size) {
  ThreadState& ts = thread_state();
  if (ts.unit_off && !ts.loop_stack.empty()) {
    // A free inside a skipped unit is dropped like any other event: the
    // burst marker that closes the gap clears strictly more state than the
    // free would have, so the subset contract is unaffected.
    ts.sampled_out += 1;
    ts.pending_gap = true;
    return;
  }
  SinkUse use(*this, ts);
  if (use.sink() == nullptr) return;  // detached after the enabled() check
  if (ts.pending_gap) close_gap(ts, *use.sink());
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  // One lifetime event per 4-byte word overlapped by [base, base+size),
  // matching the signature's address granularity (hash_address discards the
  // low two bits).  The span is derived from word(base)..word(base+size-1):
  // an unaligned base straddles one more word than size/4 suggests, and a
  // final word left in the signatures would fabricate dependences when the
  // heap reuses the memory.
  const std::uint64_t first = word_addr(base);
  const std::uint64_t last = word_addr(base + (size > 0 ? size - 1 : 0));
  const bool mt = mt_mode_.load(std::memory_order_relaxed);
  for (std::uint64_t w = first; w <= last; ++w) {
    // Lifetime boundary: a cached access to this word must not absorb a
    // repeat recorded after the heap recycles the memory — the repeat is a
    // fresh INIT, not another instance of the dead variable's access.
    ts.cache.invalidate_word(w);
    AccessEvent ev;
    ev.addr = w << 2;
    ev.kind = AccessKind::kFree;
    ev.tid = ts.tid;
    if (mt) ev.ts = timestamp_.fetch_add(1, std::memory_order_relaxed);
    // A free inside a lock region needs the same treatment as an access
    // (Fig. 4): flag it so the parallel producer keeps it on the in-order
    // immediate path, and push before the target can release the lock.
    // Without both, a lock-protected free travels the chunked path while
    // the accesses around it take the immediate one, and another thread's
    // post-free access can reach the detector before the free clears the
    // word — fabricating a dependence on the dead lifetime.
    if (ts.lock_depth > 0) ev.flags |= kInLockRegion;
    if (ts.buffer.add(ev) || ts.lock_depth > 0) {
      ts.buffer.flush(*use.sink());
      ts.cache.invalidate_all();
    }
  }
}

void Runtime::begin_unit(ThreadState& ts) {
  const unsigned burst = sampling_burst_.load(std::memory_order_relaxed);
  // Cycle boundary: the finished B+K cycle is the controller's feedback
  // granularity (adaptive mode retunes the skip count here).
  if (ts.unit_pos == 0 && adaptive_.load(std::memory_order_relaxed))
    controller_tick(ts, burst);
  const unsigned skip = sampling_skip_.load(std::memory_order_relaxed);
  ts.unit_off = ts.unit_pos >= burst;
  ts.unit_pos += 1;
  if (ts.unit_pos >= burst + skip) ts.unit_pos = 0;
}

void Runtime::controller_tick(ThreadState& ts, unsigned burst) {
  AccessSink* sink = sink_.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  const std::uint64_t now = WallTimer::now();
  const std::uint64_t cost = sink->profiling_cost_ns();
  if (ts.ctl_wall_ns != 0 && now > ts.ctl_wall_ns && cost >= ts.ctl_cost_ns) {
    const std::uint64_t dwall = now - ts.ctl_wall_ns;
    const std::uint64_t dcost = cost - ts.ctl_cost_ns;
    if (dwall > dcost) {
      // Overhead of the finished cycle: profiling CPU over everything else
      // (target work + skipped units), o = Δcost / (Δwall − Δcost).
      const double o = static_cast<double>(dcost) /
                       static_cast<double>(dwall - dcost);
      ts.ctl_ewma = ts.ctl_ewma == 0.0 ? o : 0.5 * ts.ctl_ewma + 0.5 * o;
      measured_overhead_ppm_.store(
          static_cast<std::uint64_t>(ts.ctl_ewma * 1e6),
          std::memory_order_relaxed);
      // Overhead scales with the duty cycle d = B/(B+K): steering measured
      // overhead o toward the budget b means d_new = d * b / o, i.e.
      // K_new = B/d_new - B, clamped to a sane skip range.
      const unsigned skip = sampling_skip_.load(std::memory_order_relaxed);
      const double duty =
          static_cast<double>(burst) / static_cast<double>(burst + skip);
      double d_new = ts.ctl_ewma > 1e-12
                         ? duty * budget_target_ / ts.ctl_ewma
                         : 1.0;
      if (d_new > 1.0) d_new = 1.0;
      const double k_raw =
          static_cast<double>(burst) / d_new - static_cast<double>(burst);
      long k_new = std::lround(k_raw);
      if (k_new < 0) k_new = 0;
      if (k_new > 1024) k_new = 1024;
      sampling_skip_.store(static_cast<unsigned>(k_new),
                           std::memory_order_relaxed);
    }
  }
  ts.ctl_wall_ns = now;
  ts.ctl_cost_ns = cost;
}

void Runtime::loop_begin(std::uint32_t file, std::uint32_t line) {
  ThreadState& ts = thread_state();
  ts.cache.invalidate_all();  // dedup never crosses a loop-context change
  // A fresh outermost-loop invocation starts a new sampling unit.
  if (ts.loop_stack.empty() && sampling_on_.load(std::memory_order_relaxed))
    begin_unit(ts);
  const std::uint32_t loc = SourceLocation(file, line).packed();
  const std::uint32_t parent_node =
      ts.loop_stack.empty() ? NestForest::kRoot : ts.loop_stack.back().node;
  const std::uint32_t parent_loop =
      ts.loop_stack.empty() ? 0 : ts.loop_stack.back().loop_id;
  const std::uint32_t node = nest_forest().enter(parent_node, loc);
  ts.loop_stack.push_back({loc, node, 0});
  std::lock_guard lock(cf_mu_);
  auto [it, inserted] = loops_.try_emplace(loc);
  if (inserted) {
    it->second.loop_id = loc;
    it->second.begin_loc = loc;
  }
  it->second.entries += 1;
  nest_edges_[(static_cast<std::uint64_t>(parent_loop) << 32) | loc] += 1;
}

void Runtime::loop_iter() {
  ThreadState& ts = thread_state();
  ts.cache.invalidate_all();  // dedup never crosses an iteration advance
  if (ts.loop_stack.empty()) {
    // A thread entering mid-loop (MT targets) sees iteration markers of a
    // loop its own stack never opened; advancing nothing is the only safe
    // interpretation.  Counted so the harness can surface the mismatch.
    std::lock_guard lock(cf_mu_);
    stray_iters_ += 1;
    return;
  }
  // An outermost-loop iteration boundary ends one sampling unit and starts
  // the next (inner-loop iterations stay inside the enclosing unit).
  if (ts.loop_stack.size() == 1 &&
      sampling_on_.load(std::memory_order_relaxed))
    begin_unit(ts);
  ts.loop_stack.back().iter += 1;
}

void Runtime::loop_end(std::uint32_t file, std::uint32_t line) {
  ThreadState& ts = thread_state();
  ts.cache.invalidate_all();  // dedup never crosses a loop-context change
  if (ts.loop_stack.empty()) {
    // Mid-loop thread (see loop_iter): there is no frame to pop, and
    // popping another loop's frame would corrupt the thread's nest cursor.
    std::lock_guard lock(cf_mu_);
    stray_ends_ += 1;
    return;
  }
  const ActiveLoop top = ts.loop_stack.back();
  ts.loop_stack.pop_back();
  // Leaving the outermost loop ends the current sampling unit; code outside
  // any loop is always profiled (the gate additionally requires a nonempty
  // stack, so a stale unit_off could never drop root-level events — this
  // just keeps the flag honest).
  if (ts.loop_stack.empty()) ts.unit_off = false;
  std::lock_guard lock(cf_mu_);
  auto it = loops_.find(top.loop_id);
  if (it != loops_.end()) {
    it->second.end_loc = SourceLocation(file, line).packed();
    it->second.iterations += top.iter;
  }
}

void Runtime::func_enter(std::uint32_t file, std::uint32_t line,
                         std::uint32_t name_id) {
  ThreadState& ts = thread_state();
  const std::uint32_t loc = SourceLocation(file, line).packed();
  std::lock_guard lock(cf_mu_);
  const std::uint32_t parent =
      ts.call_stack.empty() ? CallTree::kRoot : ts.call_stack.back();
  const std::uint32_t node = call_tree_.child_of(parent, loc, name_id);
  call_tree_.node(node).calls += 1;
  ts.call_stack.push_back(node);
}

void Runtime::func_exit() {
  ThreadState& ts = thread_state();
  if (!ts.call_stack.empty()) ts.call_stack.pop_back();
}

CallTree Runtime::call_tree() const {
  std::lock_guard lock(cf_mu_);
  return call_tree_;
}

void Runtime::sync_point() {
  ThreadState& ts = thread_state();
  SinkUse use(*this, ts);
  if (AccessSink* sink = use.sink()) {
    ts.buffer.flush(*sink);
    ts.cache.invalidate_all();
    sink->on_unlock(ts.tid);
  }
}

void Runtime::lock_enter() { thread_state().lock_depth += 1; }

void Runtime::lock_exit() {
  ThreadState& ts = thread_state();
  if (ts.lock_depth > 0) ts.lock_depth -= 1;
  if (ts.lock_depth != 0) return;
  // Push buffered accesses before the target releases the lock (Fig. 4).
  SinkUse use(*this, ts);
  if (AccessSink* sink = use.sink()) {
    ts.buffer.flush(*sink);
    ts.cache.invalidate_all();
    sink->on_unlock(ts.tid);
  }
}

std::uint16_t Runtime::thread_id() { return thread_state().tid; }

void Runtime::bind_thread_id(std::uint16_t tid) {
  ThreadState& ts = thread_state();
  ts.tid = tid;
  // Keep the automatic counter ahead of explicit bindings so later
  // first-touch threads do not collide with them.
  std::uint16_t next = next_tid_.load(std::memory_order_relaxed);
  while (next <= tid &&
         !next_tid_.compare_exchange_weak(next, static_cast<std::uint16_t>(tid + 1),
                                          std::memory_order_relaxed)) {
  }
}

void Runtime::mark_reduction(std::uint32_t file, std::uint32_t line) {
  const std::uint32_t loc = SourceLocation(file, line).packed();
  std::lock_guard lock(cf_mu_);
  if (std::find(reduction_lines_.begin(), reduction_lines_.end(), loc) ==
      reduction_lines_.end())
    reduction_lines_.push_back(loc);
}

std::vector<std::uint32_t> Runtime::reduction_lines() const {
  std::lock_guard lock(cf_mu_);
  return reduction_lines_;
}

ControlFlowLog Runtime::control_flow() const {
  ControlFlowLog log;
  std::lock_guard lock(cf_mu_);
  log.loops.reserve(loops_.size());
  for (const auto& [loc, rec] : loops_) log.loops.push_back(rec);
  std::sort(log.loops.begin(), log.loops.end(),
            [](const LoopRecord& a, const LoopRecord& b) {
              return a.begin_loc < b.begin_loc;
            });
  log.edges.reserve(nest_edges_.size());
  for (const auto& [key, count] : nest_edges_)
    log.edges.push_back({static_cast<std::uint32_t>(key >> 32),
                         static_cast<std::uint32_t>(key), count});
  std::sort(log.edges.begin(), log.edges.end(),
            [](const NestEdge& a, const NestEdge& b) {
              return a.parent_loop != b.parent_loop
                         ? a.parent_loop < b.parent_loop
                         : a.child_loop < b.child_loop;
            });
  log.stray_iters = stray_iters_;
  log.stray_ends = stray_ends_;
  return log;
}

void Runtime::reset() {
  std::lock_guard lock(cf_mu_);
  loops_.clear();
  nest_edges_.clear();
  stray_iters_ = 0;
  stray_ends_ = 0;
  reduction_lines_.clear();
  call_tree_.clear();
  timestamp_.store(1, std::memory_order_relaxed);
  next_tid_.store(0, std::memory_order_relaxed);
  // The nest forest is deliberately NOT cleared: it is append-only and
  // process-wide, so context ids inside recorded traces stay valid across
  // sessions (trace/nest.hpp).
  epoch_.fetch_add(1, std::memory_order_release);
}

}  // namespace depprof
