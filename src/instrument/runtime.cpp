#include "instrument/runtime.hpp"

#include <algorithm>

namespace depprof {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::ThreadState::~ThreadState() {
  Runtime::instance().forget_thread(*this);
}

Runtime::ThreadState& Runtime::thread_state() {
  thread_local ThreadState state;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (state.epoch != epoch) {
    state.epoch = epoch;
    state.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    state.lock_depth = 0;
    state.loop_stack.clear();
    state.call_stack.clear();
    state.buffer.discard();
  }
  if (!state.registered) {
    std::lock_guard lock(buffers_mu_);
    threads_.push_back(&state);
    state.registered = true;
  }
  return state;
}

void Runtime::forget_thread(ThreadState& state) {
  std::lock_guard lock(buffers_mu_);
  // A thread exiting mid-session must not drop its tail of buffered events.
  if (enabled_.load(std::memory_order_acquire) && sink_ != nullptr)
    state.buffer.flush(*sink_);
  threads_.erase(std::remove(threads_.begin(), threads_.end(), &state),
                 threads_.end());
}

void Runtime::attach(AccessSink* sink, bool mt_mode) {
  {
    // Buffers may still hold events of a previous session whose sink is
    // gone; they must not leak into the new one.
    std::lock_guard lock(buffers_mu_);
    for (ThreadState* ts : threads_) ts->buffer.discard();
  }
  sink_ = sink;
  mt_mode_ = mt_mode;
  enabled_.store(sink != nullptr, std::memory_order_release);
}

void Runtime::detach() {
  enabled_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(buffers_mu_);
    if (sink_ != nullptr)
      for (ThreadState* ts : threads_) ts->buffer.flush(*sink_);
  }
  if (sink_ != nullptr) sink_->finish();
  sink_ = nullptr;
}

void Runtime::record(const void* addr, std::size_t size, std::uint32_t file,
                     std::uint32_t line, std::uint32_t var, bool is_write) {
  (void)size;
  ThreadState& ts = thread_state();
  AccessEvent ev;
  ev.addr = reinterpret_cast<std::uintptr_t>(addr);
  ev.loc = SourceLocation(file, line).packed();
  ev.var = var;
  ev.kind = is_write ? AccessKind::kWrite : AccessKind::kRead;
  ev.tid = ts.tid;
  const std::size_t depth = ts.loop_stack.size();
  for (std::size_t i = 0; i < kLoopLevels && i < depth; ++i) {
    const ActiveLoop& l = ts.loop_stack[depth - 1 - i];
    ev.loops[i] = {l.loop_id, l.entry, l.iter};
  }
  if (mt_mode_) ev.ts = timestamp_.fetch_add(1, std::memory_order_relaxed);
  if (ts.lock_depth > 0) ev.flags |= kInLockRegion;
  const bool full = ts.buffer.add(ev);
  // Inside a lock region the access and its push must stay atomic (Fig. 4):
  // deliver immediately so no other thread can enter the region and push a
  // conflicting access first.
  if (full || ts.lock_depth > 0) ts.buffer.flush(*sink_);
}

void Runtime::record_free(const void* addr, std::size_t size) {
  ThreadState& ts = thread_state();
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  // One lifetime event per 4-byte word, matching the signature's address
  // granularity (hash_address discards the low two bits).
  const std::size_t words = std::max<std::size_t>(1, (size + 3) / 4);
  for (std::size_t i = 0; i < words; ++i) {
    AccessEvent ev;
    ev.addr = base + i * 4;
    ev.kind = AccessKind::kFree;
    ev.tid = ts.tid;
    if (mt_mode_) ev.ts = timestamp_.fetch_add(1, std::memory_order_relaxed);
    if (ts.buffer.add(ev)) ts.buffer.flush(*sink_);
  }
}

void Runtime::loop_begin(std::uint32_t file, std::uint32_t line) {
  ThreadState& ts = thread_state();
  const std::uint32_t loc = SourceLocation(file, line).packed();
  ts.loop_stack.push_back(
      {loc, next_entry_.fetch_add(1, std::memory_order_relaxed), 0});
  std::lock_guard lock(cf_mu_);
  auto [it, inserted] = loops_.try_emplace(loc);
  if (inserted) {
    it->second.loop_id = loc;
    it->second.begin_loc = loc;
  }
  it->second.entries += 1;
}

void Runtime::loop_iter() {
  ThreadState& ts = thread_state();
  if (!ts.loop_stack.empty()) ts.loop_stack.back().iter += 1;
}

void Runtime::loop_end(std::uint32_t file, std::uint32_t line) {
  ThreadState& ts = thread_state();
  if (ts.loop_stack.empty()) return;
  const ActiveLoop top = ts.loop_stack.back();
  ts.loop_stack.pop_back();
  std::lock_guard lock(cf_mu_);
  auto it = loops_.find(top.loop_id);
  if (it != loops_.end()) {
    it->second.end_loc = SourceLocation(file, line).packed();
    it->second.iterations += top.iter;
  }
}

void Runtime::func_enter(std::uint32_t file, std::uint32_t line,
                         std::uint32_t name_id) {
  ThreadState& ts = thread_state();
  const std::uint32_t loc = SourceLocation(file, line).packed();
  std::lock_guard lock(cf_mu_);
  const std::uint32_t parent =
      ts.call_stack.empty() ? CallTree::kRoot : ts.call_stack.back();
  const std::uint32_t node = call_tree_.child_of(parent, loc, name_id);
  call_tree_.node(node).calls += 1;
  ts.call_stack.push_back(node);
}

void Runtime::func_exit() {
  ThreadState& ts = thread_state();
  if (!ts.call_stack.empty()) ts.call_stack.pop_back();
}

CallTree Runtime::call_tree() const {
  std::lock_guard lock(cf_mu_);
  return call_tree_;
}

void Runtime::sync_point() {
  ThreadState& ts = thread_state();
  if (enabled() && sink_ != nullptr) {
    ts.buffer.flush(*sink_);
    sink_->on_unlock(ts.tid);
  }
}

void Runtime::lock_enter() { thread_state().lock_depth += 1; }

void Runtime::lock_exit() {
  ThreadState& ts = thread_state();
  if (ts.lock_depth > 0) ts.lock_depth -= 1;
  // Push buffered accesses before the target releases the lock (Fig. 4).
  if (ts.lock_depth == 0 && enabled() && sink_ != nullptr) {
    ts.buffer.flush(*sink_);
    sink_->on_unlock(ts.tid);
  }
}

std::uint16_t Runtime::thread_id() { return thread_state().tid; }

void Runtime::bind_thread_id(std::uint16_t tid) {
  ThreadState& ts = thread_state();
  ts.tid = tid;
  // Keep the automatic counter ahead of explicit bindings so later
  // first-touch threads do not collide with them.
  std::uint16_t next = next_tid_.load(std::memory_order_relaxed);
  while (next <= tid &&
         !next_tid_.compare_exchange_weak(next, static_cast<std::uint16_t>(tid + 1),
                                          std::memory_order_relaxed)) {
  }
}

void Runtime::mark_reduction(std::uint32_t file, std::uint32_t line) {
  const std::uint32_t loc = SourceLocation(file, line).packed();
  std::lock_guard lock(cf_mu_);
  if (std::find(reduction_lines_.begin(), reduction_lines_.end(), loc) ==
      reduction_lines_.end())
    reduction_lines_.push_back(loc);
}

std::vector<std::uint32_t> Runtime::reduction_lines() const {
  std::lock_guard lock(cf_mu_);
  return reduction_lines_;
}

ControlFlowLog Runtime::control_flow() const {
  ControlFlowLog log;
  std::lock_guard lock(cf_mu_);
  log.loops.reserve(loops_.size());
  for (const auto& [loc, rec] : loops_) log.loops.push_back(rec);
  std::sort(log.loops.begin(), log.loops.end(),
            [](const LoopRecord& a, const LoopRecord& b) {
              return a.begin_loc < b.begin_loc;
            });
  return log;
}

void Runtime::reset() {
  std::lock_guard lock(cf_mu_);
  loops_.clear();
  reduction_lines_.clear();
  call_tree_.clear();
  timestamp_.store(1, std::memory_order_relaxed);
  next_tid_.store(0, std::memory_order_relaxed);
  next_entry_.store(1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
}

}  // namespace depprof
