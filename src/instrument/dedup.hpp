#pragma once
// Front-end redundancy elision — the dedup half of the front-end event
// reduction layer (see DESIGN.md "Front-end event reduction").
//
// Loop-heavy code re-executes the same instrumented access — same word,
// kind, source location, variable, thread, and loop-iteration context —
// many times between flush points, and an exact repeat can never add a new
// dependence *entry*: it only bumps the count of the entry the first
// instance created.  The dedup cache recognizes such repeats at record time
// and run-length encodes them (AccessSink::on_batch_rle), so the pipeline's
// produce/route/queue path handles one record per run instead of one cache
// line per instance.
//
// Why the merged map is preserved exactly (not just bounded):
//
//  1. The cache is direct-mapped and indexed by the access *word alone*.
//     Any event touching a word replaces (or, for frees, clears) the cache
//     slot that word maps to.  A repeat can therefore only merge into the
//     immediately preceding event *of its own word's substream* — if any
//     event touched that word (or merely collided with its slot) in
//     between, the match fails and the event is kept verbatim.  Expanding
//     a run in place thus reproduces every per-word subsequence of the
//     original stream exactly; only the interleaving of *different* words
//     can shift.
//  2. Algorithm 1's detection state is per-address, so cross-word order is
//     invisible to exact stores; and every aggregation in DepInfo is a
//     commutative join (count sum, flags OR, per-level loop max and carry-
//     bucket sums), so the merged map is independent of cross-word arrival
//     order.
//  3. Eligibility is gated: events with a nonzero timestamp (MT targets,
//     where collapsing repeats would change the Sec. V-B reversed-timestamp
//     race check), events inside lock regions, and lifetime events never
//     dedup.  Flush points (buffer flush, loop begin/iter/end, lock
//     boundaries, sync points, detach) invalidate the whole cache in O(1)
//     via a generation bump; record_free clears the slots of the freed word
//     span so a recycled address can never merge into its previous life.
//
// The differential harness (src/oracle) enforces this contract: with dedup
// applied, exact stores must produce byte-identical maps, not merely
// signature-bounded ones.

#include <array>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "trace/event.hpp"
#include "trace/event_buffer.hpp"

namespace depprof {

/// Dedup identity: two events are exact repeats when they touch the same
/// word with the same kind, location, variable, thread, timestamp, flags,
/// nest context, and iteration window.  (Sub-word byte addresses may differ
/// — the profilers canonicalize to word granularity before detection.)
inline bool same_access_identity(const AccessEvent& a, const AccessEvent& b) {
  if (word_addr(a.addr) != word_addr(b.addr) || a.kind != b.kind ||
      a.loc != b.loc || a.var != b.var || a.tid != b.tid || a.ts != b.ts ||
      a.flags != b.flags || a.ctx != b.ctx)
    return false;
  for (std::size_t i = 0; i < kNestIters; ++i)
    if (a.iters[i] != b.iters[i]) return false;
  return true;
}

/// Whether the cache may merge this event at all.  Timestamped events (MT
/// targets) carry per-instance order the race check depends on; lock-region
/// events are flushed per-region anyway; lifetime events are never merged
/// (adjacent identical frees are rare and the word-span invalidation below
/// wants to see each one); burst markers are state-clearing control events,
/// never data.  Only plain reads and writes are merge candidates.
inline bool dedup_eligible(const AccessEvent& ev) {
  return ev.ts == 0 && ev.flags == 0 &&
         (ev.kind == AccessKind::kRead || ev.kind == AccessKind::kWrite);
}

/// Fixed-size direct-mapped map from word address to the index of the most
/// recent buffered record touching that word.  4 KiB per thread; collisions
/// only cost missed merges, never correctness (see header comment).
class DedupCache {
 public:
  static constexpr std::size_t kEntries = 256;
  static constexpr std::uint32_t kNoIndex = ~0u;

  /// Index of the live cached record for `word`, or kNoIndex.  The caller
  /// still compares full identity against the buffered event — the cache
  /// only narrows the candidate set to at most one.
  std::uint32_t find(std::uint64_t word) const {
    const Entry& e = entries_[slot(word)];
    return (e.generation == generation_ && e.word == word) ? e.index
                                                           : kNoIndex;
  }

  /// Records that buffered record `index` is now the latest event touching
  /// `word`.  Replaces whatever occupied the slot — mandatory even when the
  /// evicted entry is a different word, so a later repeat of that word
  /// cannot merge across this event.
  void put(std::uint64_t word, std::uint32_t index) {
    entries_[slot(word)] = Entry{word, index, generation_};
  }

  /// Drops the cached record for `word` if one is live (record_free's
  /// word-span invalidation).
  void invalidate_word(std::uint64_t word) {
    Entry& e = entries_[slot(word)];
    if (e.generation == generation_ && e.word == word) e.generation = 0;
  }

  /// O(1) full invalidation — every flush point calls this.  Generation 0
  /// never matches, and a (rare) wrap clears the table outright.
  void invalidate_all() {
    if (++generation_ == 0) {
      entries_.fill(Entry{});
      generation_ = 1;
    }
  }

 private:
  struct Entry {
    std::uint64_t word = 0;
    std::uint32_t index = 0;
    std::uint32_t generation = 0;  ///< 0 = free (generation_ starts at 1)
  };
  static std::size_t slot(std::uint64_t word) {
    return static_cast<std::size_t>(mix64(word)) & (kEntries - 1);
  }
  std::array<Entry, kEntries> entries_{};
  std::uint32_t generation_ = 1;
};

/// A run-length-encoded event stream: reps[i] >= 1 identical instances of
/// events[i].  Expanding the runs in order reproduces every per-word
/// subsequence of the stream the encoder consumed.
struct RleStream {
  std::vector<AccessEvent> events;
  std::vector<std::uint32_t> reps;

  std::uint64_t logical_events() const {
    std::uint64_t n = 0;
    for (std::uint32_t r : reps) n += r;
    return n;
  }
};

/// Applies the runtime's dedup policy to a flat event stream — the
/// trace-replay twin of the per-thread cache in instrument/runtime.cpp,
/// used by the differential harness, the equivalence tests, and
/// bench/frontend.  One shared cache over the whole stream (an event of any
/// thread replaces the slot of its word), so per-word subsequences are
/// preserved across threads too.
inline RleStream dedup_stream(const AccessEvent* events, std::size_t count) {
  RleStream out;
  out.events.reserve(count);
  out.reps.reserve(count);
  DedupCache cache;
  for (std::size_t i = 0; i < count; ++i) {
    const AccessEvent& ev = events[i];
    const std::uint64_t word = word_addr(ev.addr);
    if (ev.kind == AccessKind::kFree) {
      cache.invalidate_word(word);
      out.events.push_back(ev);
      out.reps.push_back(1);
      continue;
    }
    if (ev.kind == AccessKind::kBurstMark) {
      // The marker clears all detection state downstream, so a post-marker
      // repeat must not merge into a pre-marker record: expanding the run
      // would move the repeat across the store clear.
      cache.invalidate_all();
      out.events.push_back(ev);
      out.reps.push_back(1);
      continue;
    }
    if (dedup_eligible(ev)) {
      const std::uint32_t idx = cache.find(word);
      if (idx != DedupCache::kNoIndex &&
          same_access_identity(out.events[idx], ev) &&
          out.reps[idx] != ~0u) {
        out.reps[idx] += 1;
        continue;
      }
      out.events.push_back(ev);
      out.reps.push_back(1);
      cache.put(word, static_cast<std::uint32_t>(out.events.size() - 1));
    } else {
      out.events.push_back(ev);
      out.reps.push_back(1);
      cache.put(word, static_cast<std::uint32_t>(out.events.size() - 1));
    }
  }
  return out;
}

/// Expands an RLE stream back into the flat event sequence its runs encode.
inline std::vector<AccessEvent> expand_rle(const RleStream& rle) {
  std::vector<AccessEvent> out;
  out.reserve(rle.events.size());
  for (std::size_t i = 0; i < rle.events.size(); ++i)
    for (std::uint32_t r = 0; r < rle.reps[i]; ++r)
      out.push_back(rle.events[i]);
  return out;
}

/// Streams an RLE stream into `sink` in EventBuffer-sized record batches
/// (the granularity live instrumentation flushes at) and finishes it — the
/// RLE twin of trace replay().
inline void replay_rle(const RleStream& rle, AccessSink& sink) {
  const std::size_t count = rle.events.size();
  for (std::size_t off = 0; off < count; off += EventBuffer::kCapacity) {
    const std::size_t n = count - off < EventBuffer::kCapacity
                              ? count - off
                              : EventBuffer::kCapacity;
    sink.on_batch_rle(rle.events.data() + off, rle.reps.data() + off, n);
  }
  sink.finish();
}

}  // namespace depprof
